#include "isa/assembler.hh"

#include <optional>

#include "common/log.hh"
#include "common/strutil.hh"
#include "isa/encoding.hh"

namespace synchro::isa
{

std::vector<uint32_t>
Program::words() const
{
    std::vector<uint32_t> out;
    out.reserve(insts.size());
    for (const auto &i : insts)
        out.push_back(encode(i));
    return out;
}

uint32_t
Program::label(const std::string &name) const
{
    auto it = labels.find(name);
    if (it == labels.end())
        fatal("undefined label '%s'", name.c_str());
    return it->second;
}

namespace
{

/** One source line reduced to mnemonic + raw operand strings. */
struct RawInst
{
    int line;
    std::string mnemonic;
    std::vector<std::string> operands;
};

std::string
stripComment(const std::string &line)
{
    size_t pos = line.size();
    for (size_t i = 0; i < line.size(); ++i) {
        char c = line[i];
        if (c == ';' || c == '#') {
            pos = i;
            break;
        }
        if (c == '/' && i + 1 < line.size() && line[i + 1] == '/') {
            pos = i;
            break;
        }
    }
    return line.substr(0, pos);
}

/** Split operand text on commas that are not inside brackets. */
std::vector<std::string>
splitOperands(const std::string &s)
{
    std::vector<std::string> out;
    std::string cur;
    int depth = 0;
    for (char c : s) {
        if (c == '[')
            ++depth;
        else if (c == ']')
            --depth;
        if (c == ',' && depth == 0) {
            out.push_back(trim(cur));
            cur.clear();
        } else {
            cur += c;
        }
    }
    cur = trim(cur);
    if (!cur.empty())
        out.push_back(cur);
    return out;
}

class Assembler
{
  public:
    Program
    run(const std::string &source)
    {
        firstPass(source);
        secondPass();
        return std::move(prog_);
    }

  private:
    Program prog_;
    std::vector<RawInst> raw_;
    std::map<std::string, int64_t> equs_;

    [[noreturn]] void
    err(int line, const std::string &msg)
    {
        fatal("asm line %d: %s", line, msg.c_str());
    }

    static bool
    validSymbol(const std::string &s)
    {
        if (s.empty())
            return false;
        if (!std::isalpha(static_cast<unsigned char>(s[0])) &&
            s[0] != '_' && s[0] != '.') {
            return false;
        }
        for (char c : s) {
            if (!std::isalnum(static_cast<unsigned char>(c)) &&
                c != '_' && c != '.') {
                return false;
            }
        }
        return true;
    }

    void
    firstPass(const std::string &source)
    {
        int line_no = 0;
        for (auto &line : split(source, '\n')) {
            ++line_no;
            std::string text = trim(stripComment(line));

            // Labels (possibly several, possibly inline with an insn).
            while (true) {
                size_t colon = text.find(':');
                if (colon == std::string::npos)
                    break;
                std::string name = trim(text.substr(0, colon));
                // A ':' inside an operand never appears in SyncBF, so
                // any colon delimits a label.
                if (!validSymbol(name))
                    err(line_no, "bad label '" + name + "'");
                if (prog_.labels.count(name))
                    err(line_no, "duplicate label '" + name + "'");
                prog_.labels[name] = uint32_t(raw_.size());
                text = trim(text.substr(colon + 1));
            }
            if (text.empty())
                continue;

            // Directives.
            if (startsWith(text, ".equ")) {
                auto parts = splitOperands(trim(text.substr(4)));
                if (parts.size() != 2)
                    err(line_no, ".equ needs NAME, value");
                int64_t value;
                if (!parseInt(parts[1], value))
                    err(line_no, "bad .equ value '" + parts[1] + "'");
                if (!validSymbol(parts[0]))
                    err(line_no, "bad .equ name '" + parts[0] + "'");
                equs_[parts[0]] = value;
                continue;
            }
            if (text[0] == '.')
                err(line_no, "unknown directive '" + text + "'");

            // Instruction: mnemonic then comma-separated operands.
            size_t sp = text.find_first_of(" \t");
            RawInst ri;
            ri.line = line_no;
            ri.mnemonic = toLower(text.substr(0, sp));
            if (sp != std::string::npos)
                ri.operands = splitOperands(trim(text.substr(sp)));
            raw_.push_back(std::move(ri));
        }
    }

    Opcode
    lookupOpcode(const RawInst &ri)
    {
        for (unsigned o = 0; o < unsigned(Opcode::NumOpcodes); ++o) {
            if (ri.mnemonic == opInfo(Opcode(o)).mnemonic)
                return Opcode(o);
        }
        err(ri.line, "unknown mnemonic '" + ri.mnemonic + "'");
    }

    unsigned
    parseReg(const RawInst &ri, const std::string &tok, char kind,
             unsigned limit)
    {
        std::string t = toLower(trim(tok));
        if (t.size() < 2 || t[0] != kind)
            err(ri.line, "expected register '" + std::string(1, kind) +
                             "N', got '" + tok + "'");
        int64_t n;
        if (!parseInt(t.substr(1), n) || n < 0 || n >= int64_t(limit))
            err(ri.line, "bad register '" + tok + "'");
        return unsigned(n);
    }

    int64_t
    parseImmediate(const RawInst &ri, const std::string &tok)
    {
        int64_t v;
        if (parseInt(tok, v))
            return v;
        auto eq = equs_.find(tok);
        if (eq != equs_.end())
            return eq->second;
        auto lb = prog_.labels.find(tok);
        if (lb != prog_.labels.end())
            return lb->second;
        err(ri.line, "bad immediate or undefined symbol '" + tok + "'");
    }

    HalfSel
    parseHsel(const RawInst &ri, const std::string &tok)
    {
        std::string t = toLower(trim(tok));
        if (t == "ll")
            return HalfSel::LL;
        if (t == "lh")
            return HalfSel::LH;
        if (t == "hl")
            return HalfSel::HL;
        if (t == "hh")
            return HalfSel::HH;
        err(ri.line, "bad half selector '" + tok + "' (ll/lh/hl/hh)");
    }

    /** Parse "[pN+off]", "[pN]", "[pN]+off", "[pN]++", "[pN]--". */
    void
    parseMem(const RawInst &ri, const std::string &tok, unsigned &p,
             MemMode &mode, int32_t &imm, unsigned access_size)
    {
        std::string t = trim(tok);
        if (t.empty() || t[0] != '[')
            err(ri.line, "expected memory operand, got '" + tok + "'");
        size_t close = t.find(']');
        if (close == std::string::npos)
            err(ri.line, "missing ']' in '" + tok + "'");
        std::string inside = trim(t.substr(1, close - 1));
        std::string after = trim(t.substr(close + 1));

        // Inside: pN or pN+off or pN-off.
        size_t op_pos = inside.find_first_of("+-", 1);
        std::string preg = op_pos == std::string::npos
                               ? inside
                               : trim(inside.substr(0, op_pos));
        p = parseReg(ri, preg, 'p', NumPtrRegs);

        if (op_pos != std::string::npos) {
            if (!after.empty())
                err(ri.line, "offset and post-modify both given");
            mode = MemMode::Offset;
            imm = int32_t(parseImmediate(ri, inside.substr(op_pos)));
            return;
        }
        if (after.empty()) {
            mode = MemMode::Offset;
            imm = 0;
            return;
        }
        mode = MemMode::PostMod;
        if (after == "++") {
            imm = int32_t(access_size);
        } else if (after == "--") {
            imm = -int32_t(access_size);
        } else if (after[0] == '+' || after[0] == '-') {
            imm = int32_t(parseImmediate(ri, after));
        } else {
            err(ri.line, "bad post-modify '" + after + "'");
        }
    }

    static unsigned
    accessSize(Opcode op)
    {
        switch (op) {
          case Opcode::LDW:
          case Opcode::STW:
            return 4;
          case Opcode::LDH:
          case Opcode::LDHU:
          case Opcode::STH:
            return 2;
          default:
            return 1;
        }
    }

    void
    need(const RawInst &ri, size_t n)
    {
        if (ri.operands.size() != n) {
            err(ri.line,
                strprintf("'%s' expects %zu operands, got %zu",
                          ri.mnemonic.c_str(), n, ri.operands.size()));
        }
    }

    void
    secondPass()
    {
        for (const auto &ri : raw_) {
            Opcode op = lookupOpcode(ri);
            Inst inst;
            inst.op = op;
            const auto &ops = ri.operands;

            switch (opInfo(op).format) {
              case Format::F0:
                need(ri, 0);
                break;
              case Format::F3R:
                need(ri, 3);
                inst.rd = parseReg(ri, ops[0], 'r', NumDataRegs);
                inst.rs1 = parseReg(ri, ops[1], 'r', NumDataRegs);
                inst.rs2 = parseReg(ri, ops[2], 'r', NumDataRegs);
                break;
              case Format::F2R:
                need(ri, 2);
                if (op == Opcode::MOVP) {
                    inst.rd = parseReg(ri, ops[0], 'p', NumPtrRegs);
                    inst.rs1 = parseReg(ri, ops[1], 'r', NumDataRegs);
                } else if (op == Opcode::MOVRP) {
                    inst.rd = parseReg(ri, ops[0], 'r', NumDataRegs);
                    inst.rs1 = parseReg(ri, ops[1], 'p', NumPtrRegs);
                } else {
                    inst.rd = parseReg(ri, ops[0], 'r', NumDataRegs);
                    inst.rs1 = parseReg(ri, ops[1], 'r', NumDataRegs);
                }
                break;
              case Format::F1R:
                if (op == Opcode::CWR || op == Opcode::CRD) {
                    // Optional bus-lane tag: "crd r0, 3". Untagged
                    // keeps the legacy lane-agnostic behaviour.
                    if (ops.size() != 1 && ops.size() != 2)
                        err(ri.line, "'" + ri.mnemonic +
                                         "' expects reg [, lane]");
                    inst.rd = parseReg(ri, ops[0], 'r', NumDataRegs);
                    if (ops.size() == 2) {
                        int64_t lane = parseImmediate(ri, ops[1]);
                        // An explicit lane must be a real lane; the
                        // untagged form is spelled by omission, not
                        // as -1 (which the +1 bias would alias).
                        if (lane < 0 || lane >= int64_t(BusLaneCount))
                            err(ri.line,
                                "comm lane must be 0..7, got '" +
                                    trim(ops[1]) + "'");
                        inst.imm = int32_t(lane + 1);
                    }
                    break;
                }
                need(ri, 1);
                inst.rd = parseReg(ri, ops[0], 'r', NumDataRegs);
                break;
              case Format::FRI: {
                need(ri, 2);
                char kind = (op == Opcode::MOVPI || op == Opcode::PADDI)
                                ? 'p'
                                : 'r';
                unsigned limit =
                    kind == 'p' ? NumPtrRegs : NumDataRegs;
                inst.rd = parseReg(ri, ops[0], kind, limit);
                inst.imm = int32_t(parseImmediate(ri, ops[1]));
                break;
              }
              case Format::FSHI:
                need(ri, 3);
                inst.rd = parseReg(ri, ops[0], 'r', NumDataRegs);
                inst.rs1 = parseReg(ri, ops[1], 'r', NumDataRegs);
                inst.imm = int32_t(parseImmediate(ri, ops[2]));
                break;
              case Format::FMAC:
                if (ops.size() != 3 && ops.size() != 4)
                    err(ri.line, "'" + ri.mnemonic +
                                     "' expects acc, rs1, rs2 [, hsel]");
                inst.acc = parseReg(ri, ops[0], 'a', NumAccums);
                inst.rs1 = parseReg(ri, ops[1], 'r', NumDataRegs);
                inst.rs2 = parseReg(ri, ops[2], 'r', NumDataRegs);
                inst.hsel = ops.size() == 4 ? parseHsel(ri, ops[3])
                                            : HalfSel::LL;
                break;
              case Format::FACC:
                need(ri, 1);
                inst.acc = parseReg(ri, ops[0], 'a', NumAccums);
                break;
              case Format::FAEXT:
                need(ri, 3);
                inst.rd = parseReg(ri, ops[0], 'r', NumDataRegs);
                inst.acc = parseReg(ri, ops[1], 'a', NumAccums);
                inst.imm = int32_t(parseImmediate(ri, ops[2]));
                break;
              case Format::FMEM: {
                need(ri, 2);
                unsigned p;
                MemMode mode;
                int32_t imm;
                inst.rd = parseReg(ri, ops[0], 'r', NumDataRegs);
                parseMem(ri, ops[1], p, mode, imm, accessSize(op));
                inst.rs1 = uint8_t(p);
                inst.mode = mode;
                inst.imm = imm;
                break;
              }
              case Format::FJ:
                need(ri, 1);
                inst.imm = int32_t(parseImmediate(ri, ops[0]));
                break;
              case Format::FLOOP: {
                need(ri, 3);
                std::string lt = toLower(trim(ops[0]));
                if (lt != "lc0" && lt != "lc1")
                    err(ri.line, "lsetup counter must be lc0 or lc1");
                inst.lc = lt == "lc1" ? 1 : 0;
                inst.end = uint16_t(parseImmediate(ri, ops[1]));
                inst.imm = int32_t(parseImmediate(ri, ops[2]));
                break;
              }
            }

            // Range-check now so errors carry line numbers.
            try {
                validate(inst);
            } catch (const FatalError &e) {
                err(ri.line, e.what());
            }
            prog_.insts.push_back(inst);
        }
    }
};

} // namespace

Program
assemble(const std::string &source)
{
    Assembler as;
    return as.run(source);
}

} // namespace synchro::isa
