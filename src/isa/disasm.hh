/**
 * @file
 * Disassembler: renders decoded instructions back into assembler
 * syntax (asm -> encode -> decode -> disasm -> asm round-trips).
 */

#ifndef SYNC_ISA_DISASM_HH
#define SYNC_ISA_DISASM_HH

#include <string>

#include "isa/inst.hh"

namespace synchro::isa
{

/** One instruction in assembler syntax (no label resolution). */
std::string disassemble(const Inst &inst);

} // namespace synchro::isa

#endif // SYNC_ISA_DISASM_HH
