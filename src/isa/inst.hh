/**
 * @file
 * SyncBF: the Blackfin-inspired instruction set of a Synchroscalar
 * tile (paper Section 2.3: "Synchroscalar Tiles are based on the
 * ADI/Intel Blackfin DSP ISA, but with control provided by the SIMD
 * controller instead of in each tile").
 *
 * Architectural state per tile:
 *  - R0..R7   32-bit data registers; R7 is the designated
 *             communication register
 *  - P0..P5   32-bit pointer registers into the 32 KB local SRAM
 *  - A0, A1   40-bit accumulators
 *  - CC       one condition flag (read by the SIMD controller)
 *
 * Control-flow instructions (JUMP/JCC/JNCC/LSETUP/HALT) execute on the
 * column's SIMD controller; everything else is broadcast to the tiles.
 * All instructions are 32 bits wide.
 */

#ifndef SYNC_ISA_INST_HH
#define SYNC_ISA_INST_HH

#include <cstdint>
#include <string>

namespace synchro::isa
{

constexpr unsigned NumDataRegs = 8;
constexpr unsigned NumPtrRegs = 6;
constexpr unsigned NumAccums = 2;
constexpr unsigned CommReg = 7; //!< R7 (paper Figure 2)
constexpr unsigned BusLaneCount = 8; //!< 32-bit splits of the bus

/** Halfword pair selector for MAC/MSU: which 16-bit halves multiply. */
enum class HalfSel : uint8_t
{
    LL = 0, //!< rs1.lo x rs2.lo
    LH = 1, //!< rs1.lo x rs2.hi
    HL = 2, //!< rs1.hi x rs2.lo
    HH = 3, //!< rs1.hi x rs2.hi
};

/** Memory addressing mode. */
enum class MemMode : uint8_t
{
    Offset = 0,  //!< effective = P + imm; P unchanged
    PostMod = 1, //!< effective = P; then P += imm
};

enum class Opcode : uint8_t
{
    // Controller / no-operand
    NOP = 0,
    HALT,

    // Three-register ALU
    ADD, SUB, AND_, OR_, XOR_, MIN, MAX, LSL, LSR, ASR, MUL, SEL,

    // Two-register ALU
    NEG, NOT_, ABS, MOV,

    // Register-immediate ALU
    ADDI, LSLI, LSRI, ASRI,

    // Dual-16-bit (video ALU) operations
    ADD16, SUB16,

    // Accumulator / MAC group
    MAC,  //!< acc += half(rs1) * half(rs2) (40-bit saturating)
    MSU,  //!< acc -= half(rs1) * half(rs2)
    SAA,  //!< acc += sum over 4 bytes |rs1.b[i] - rs2.b[i]|
    ACLR, //!< acc = 0
    AEXT, //!< rd = sat32(acc >> imm5)

    // Moves / immediates
    MOVI,  //!< rd = sign-extended imm16
    MOVIH, //!< rd[31:16] = imm16 (low half kept)
    MOVPI, //!< pd = zero-extended imm16
    MOVP,  //!< pd = rs
    MOVRP, //!< rd = ps
    PADDI, //!< pd += sign-extended imm16
    TID,   //!< rd = tile index within column

    // Loads / stores (local 32 KB SRAM)
    LDW, LDH, LDHU, LDB, LDBU, STW, STH, STB,

    // Compares (set tile CC)
    CMPEQ, CMPLT, CMPLE, CMPLTU,

    // Controller control flow
    JUMP,   //!< pc = imm
    JCC,    //!< if (CC) pc = imm  (1-cycle stall, paper 2.2)
    JNCC,   //!< if (!CC) pc = imm (1-cycle stall)
    LSETUP, //!< zero-overhead loop: body [pc+1, end), count times

    // Communication (through read/write buffers to the column bus).
    // Both take an optional bus-lane operand: `cwr r7, 3` tags the
    // buffered word for lane 3 so the DOU only drives it onto that
    // lane; `crd r0, 3` reads the lane-3 read buffer. Untagged forms
    // keep the legacy lane-agnostic behaviour (drive on any scheduled
    // lane / read the lowest-indexed valid lane buffer).
    CWR, //!< write buffer <- rs (by convention R7)
    CRD, //!< rd <- read buffer (stalls column until valid)

    NumOpcodes
};

/** Encoding format of each opcode. */
enum class Format : uint8_t
{
    F0,    //!< no operands
    F3R,   //!< rd, rs1, rs2
    F2R,   //!< rd, rs
    FRI,   //!< rd, imm16 (MOVI/MOVIH/MOVPI/PADDI/ADDI)
    FSHI,  //!< rd, rs, imm5
    FMAC,  //!< acc, rs1, rs2, hsel
    FACC,  //!< acc only (ACLR) / rd, acc, imm5 (AEXT uses FAEXT)
    FAEXT, //!< rd, acc, imm5
    FMEM,  //!< rd/rs, p, mode, imm10
    FJ,    //!< imm16 target
    FLOOP, //!< lc, end12, count12
    F1R,   //!< single register (CWR/CRD/TID)
};

/** Static description of one opcode. */
struct OpInfo
{
    const char *mnemonic;
    Format format;
    bool is_control;  //!< executes on the SIMD controller
    bool reads_mem;
    bool writes_mem;
};

/** Lookup table indexed by Opcode. */
const OpInfo &opInfo(Opcode op);

/** Mnemonic for an opcode ("add", "ld.w", ...). */
const char *mnemonic(Opcode op);

/**
 * Decoded instruction. Fields are only meaningful for the opcode's
 * format; unused fields are zero.
 */
struct Inst
{
    Opcode op = Opcode::NOP;
    uint8_t rd = 0;      //!< destination data/pointer register
    uint8_t rs1 = 0;     //!< first source register
    uint8_t rs2 = 0;     //!< second source register
    uint8_t acc = 0;     //!< accumulator index (0/1)
    HalfSel hsel = HalfSel::LL;
    MemMode mode = MemMode::Offset;
    uint8_t lc = 0;      //!< loop counter index (0/1)
    int32_t imm = 0;     //!< immediate (sign depends on format)
    uint16_t end = 0;    //!< loop end address (FLOOP)

    bool isControl() const { return opInfo(op).is_control; }

    friend bool
    operator==(const Inst &a, const Inst &b)
    {
        return a.op == b.op && a.rd == b.rd && a.rs1 == b.rs1 &&
               a.rs2 == b.rs2 && a.acc == b.acc && a.hsel == b.hsel &&
               a.mode == b.mode && a.lc == b.lc && a.imm == b.imm &&
               a.end == b.end;
    }
};

/** Convenience constructors used by tests and code generators. */
namespace build
{

Inst nop();
Inst halt();
Inst alu3(Opcode op, unsigned rd, unsigned rs1, unsigned rs2);
Inst alu2(Opcode op, unsigned rd, unsigned rs);
Inst aluImm(Opcode op, unsigned rd, int32_t imm);
Inst shiftImm(Opcode op, unsigned rd, unsigned rs, unsigned imm5);
Inst mac(Opcode op, unsigned acc, unsigned rs1, unsigned rs2, HalfSel h);
Inst saa(unsigned acc, unsigned rs1, unsigned rs2);
Inst aclr(unsigned acc);
Inst aext(unsigned rd, unsigned acc, unsigned shift);
Inst movi(unsigned rd, int32_t imm16);
Inst movih(unsigned rd, uint16_t imm16);
Inst movpi(unsigned pd, uint16_t imm16);
Inst movp(unsigned pd, unsigned rs);
Inst movrp(unsigned rd, unsigned ps);
Inst paddi(unsigned pd, int32_t imm16);
Inst tid(unsigned rd);
Inst load(Opcode op, unsigned rd, unsigned p, MemMode m, int32_t imm);
Inst store(Opcode op, unsigned rs, unsigned p, MemMode m, int32_t imm);
Inst cmp(Opcode op, unsigned rs1, unsigned rs2);
Inst jump(uint16_t target);
Inst jcc(uint16_t target);
Inst jncc(uint16_t target);
Inst lsetup(unsigned lc, uint16_t end, uint16_t count);
Inst cwr(unsigned rs, int lane = -1);
Inst crd(unsigned rd, int lane = -1);

} // namespace build

} // namespace synchro::isa

#endif // SYNC_ISA_INST_HH
