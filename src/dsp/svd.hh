/**
 * @file
 * Jacobi singular value decomposition (paper Section 3: Stereo Vision
 * uses SVD [Pilu 30] for point-feature correlation; the paper maps it
 * to a single tile at 500 MHz because it resists parallelization).
 *
 * One-sided Jacobi: orthogonalize column pairs of A by rotations
 * until convergence; A = U * diag(S) * V^T with U, V orthogonal and
 * S descending non-negative.
 */

#ifndef SYNC_DSP_SVD_HH
#define SYNC_DSP_SVD_HH

#include <vector>

namespace synchro::dsp
{

/** Dense row-major matrix of doubles. */
class Matrix
{
  public:
    Matrix() = default;
    Matrix(unsigned rows, unsigned cols, double fill = 0.0);

    unsigned rows() const { return rows_; }
    unsigned cols() const { return cols_; }

    double &operator()(unsigned r, unsigned c);
    double operator()(unsigned r, unsigned c) const;

    static Matrix identity(unsigned n);
    Matrix transposed() const;
    Matrix operator*(const Matrix &rhs) const;

  private:
    unsigned rows_ = 0, cols_ = 0;
    std::vector<double> data_;
};

struct SvdResult
{
    Matrix u;              //!< m x n, orthonormal columns
    std::vector<double> s; //!< n singular values, descending
    Matrix v;              //!< n x n orthogonal
};

/**
 * Compute the thin SVD of @p a (rows >= cols required) by one-sided
 * Jacobi iteration.
 */
SvdResult jacobiSvd(const Matrix &a, unsigned max_sweeps = 60,
                    double eps = 1e-12);

} // namespace synchro::dsp

#endif // SYNC_DSP_SVD_HH
