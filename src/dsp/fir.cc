#include "dsp/fir.hh"

#include <cmath>

#include "common/log.hh"

namespace synchro::dsp
{

FirQ15::FirQ15(std::vector<int16_t> taps) : taps_(std::move(taps))
{
    if (taps_.empty())
        fatal("FirQ15: empty tap vector");
    hist_.assign(taps_.size(), 0);
}

int16_t
FirQ15::step(int16_t x)
{
    hist_[pos_] = x;
    int64_t acc = 0;
    size_t idx = pos_;
    for (size_t k = 0; k < taps_.size(); ++k) {
        acc = sat40(acc + int32_t(taps_[k]) * int32_t(hist_[idx]));
        idx = idx == 0 ? hist_.size() - 1 : idx - 1;
    }
    pos_ = (pos_ + 1) % hist_.size();
    return sat16((acc + (1 << 14)) >> 15);
}

std::vector<int16_t>
FirQ15::process(const std::vector<int16_t> &x)
{
    std::vector<int16_t> out(x.size());
    for (size_t i = 0; i < x.size(); ++i)
        out[i] = step(x[i]);
    return out;
}

std::vector<int16_t>
FirQ15::convolve(const std::vector<int16_t> &taps,
                 const std::vector<int16_t> &x)
{
    FirQ15 f(taps);
    return f.process(x);
}

void
FirQ15::reset()
{
    std::fill(hist_.begin(), hist_.end(), 0);
    pos_ = 0;
}

namespace
{

std::vector<double>
windowedSinc(unsigned taps, double cutoff_norm)
{
    if (taps == 0 || cutoff_norm <= 0.0 || cutoff_norm >= 0.5)
        fatal("lowpass design: need taps > 0, 0 < cutoff < 0.5");
    std::vector<double> h(taps);
    double m = double(taps - 1);
    for (unsigned n = 0; n < taps; ++n) {
        double k = double(n) - m / 2.0;
        double s = k == 0.0 ? 2.0 * cutoff_norm
                            : std::sin(2.0 * M_PI * cutoff_norm * k) /
                                  (M_PI * k);
        double w = 0.54 - 0.46 * std::cos(2.0 * M_PI * n / m);
        h[n] = s * w;
    }
    return h;
}

std::vector<int16_t>
quantizeUnitDc(std::vector<double> h)
{
    double dc = 0;
    for (double v : h)
        dc += v;
    std::vector<int16_t> q(h.size());
    for (size_t i = 0; i < h.size(); ++i)
        q[i] = toQ15(h[i] / dc * 0.999);
    return q;
}

} // namespace

std::vector<int16_t>
designLowpassQ15(unsigned taps, double cutoff_norm)
{
    return quantizeUnitDc(windowedSinc(taps, cutoff_norm));
}

std::vector<int16_t>
designCfir21(unsigned cic_stages, unsigned cic_r)
{
    // Frequency-sampling design: desired response = inverse of the
    // CIC's sinc^N droop inside the passband, zero in the stopband;
    // inverse DFT (linear phase) windowed to 21 taps with Hamming.
    const unsigned taps = 21;
    const unsigned grid = 512;
    const double passband = 0.20; // of the (decimated) sample rate
    std::vector<double> mag(grid);
    for (unsigned i = 0; i < grid; ++i) {
        double f = double(i) / (2.0 * grid); // 0 .. 0.5 of fs
        if (f >= passband) {
            mag[i] = 0.0;
            continue;
        }
        double droop = 1.0;
        if (f > 1e-9) {
            // Droop of the pre-decimation CIC evaluated at the
            // frequency this post-decimation bin aliases from.
            double x = M_PI * f / cic_r;
            droop = std::pow(
                std::sin(cic_r * x) / (cic_r * std::sin(x)),
                double(cic_stages));
        }
        mag[i] = 1.0 / std::max(droop, 0.25);
    }
    std::vector<double> g(taps);
    for (unsigned n = 0; n < taps; ++n) {
        double k = double(n) - double(taps - 1) / 2.0;
        double acc = mag[0];
        for (unsigned i = 1; i < grid; ++i) {
            acc += 2.0 * mag[i] *
                   std::cos(2.0 * M_PI * (double(i) / (2.0 * grid)) *
                            k);
        }
        double w = 0.54 - 0.46 * std::cos(2.0 * M_PI * n /
                                          double(taps - 1));
        g[n] = acc / (2.0 * grid) * w;
    }
    return quantizeUnitDc(g);
}

std::vector<int16_t>
designPfir63(double cutoff_norm)
{
    return designLowpassQ15(63, cutoff_norm);
}

} // namespace synchro::dsp
