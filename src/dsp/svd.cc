#include "dsp/svd.hh"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/log.hh"

namespace synchro::dsp
{

Matrix::Matrix(unsigned rows, unsigned cols, double fill)
    : rows_(rows), cols_(cols), data_(size_t(rows) * cols, fill)
{
}

double &
Matrix::operator()(unsigned r, unsigned c)
{
    sync_assert(r < rows_ && c < cols_, "matrix index (%u,%u)", r, c);
    return data_[size_t(r) * cols_ + c];
}

double
Matrix::operator()(unsigned r, unsigned c) const
{
    sync_assert(r < rows_ && c < cols_, "matrix index (%u,%u)", r, c);
    return data_[size_t(r) * cols_ + c];
}

Matrix
Matrix::identity(unsigned n)
{
    Matrix m(n, n);
    for (unsigned i = 0; i < n; ++i)
        m(i, i) = 1.0;
    return m;
}

Matrix
Matrix::transposed() const
{
    Matrix t(cols_, rows_);
    for (unsigned r = 0; r < rows_; ++r)
        for (unsigned c = 0; c < cols_; ++c)
            t(c, r) = (*this)(r, c);
    return t;
}

Matrix
Matrix::operator*(const Matrix &rhs) const
{
    if (cols_ != rhs.rows_)
        fatal("matrix multiply: %ux%u times %ux%u", rows_, cols_,
              rhs.rows_, rhs.cols_);
    Matrix out(rows_, rhs.cols_);
    for (unsigned r = 0; r < rows_; ++r) {
        for (unsigned k = 0; k < cols_; ++k) {
            double a = (*this)(r, k);
            if (a == 0.0)
                continue;
            for (unsigned c = 0; c < rhs.cols_; ++c)
                out(r, c) += a * rhs(k, c);
        }
    }
    return out;
}

SvdResult
jacobiSvd(const Matrix &a, unsigned max_sweeps, double eps)
{
    const unsigned m = a.rows();
    const unsigned n = a.cols();
    if (m < n)
        fatal("jacobiSvd: need rows >= cols (got %ux%u)", m, n);

    Matrix u = a;                  // will hold U * diag(S)
    Matrix v = Matrix::identity(n);

    auto coldot = [&](unsigned i, unsigned j) {
        double s = 0;
        for (unsigned r = 0; r < m; ++r)
            s += u(r, i) * u(r, j);
        return s;
    };

    for (unsigned sweep = 0; sweep < max_sweeps; ++sweep) {
        bool converged = true;
        for (unsigned i = 0; i + 1 < n; ++i) {
            for (unsigned j = i + 1; j < n; ++j) {
                double aii = coldot(i, i);
                double ajj = coldot(j, j);
                double aij = coldot(i, j);
                if (std::abs(aij) <=
                    eps * std::sqrt(aii * ajj) + 1e-300) {
                    continue;
                }
                converged = false;
                // Jacobi rotation zeroing the (i,j) inner product.
                double tau = (ajj - aii) / (2.0 * aij);
                double t = (tau >= 0 ? 1.0 : -1.0) /
                           (std::abs(tau) +
                            std::sqrt(1.0 + tau * tau));
                double c = 1.0 / std::sqrt(1.0 + t * t);
                double s = c * t;
                for (unsigned r = 0; r < m; ++r) {
                    double ui = u(r, i), uj = u(r, j);
                    u(r, i) = c * ui - s * uj;
                    u(r, j) = s * ui + c * uj;
                }
                for (unsigned r = 0; r < n; ++r) {
                    double vi = v(r, i), vj = v(r, j);
                    v(r, i) = c * vi - s * vj;
                    v(r, j) = s * vi + c * vj;
                }
            }
        }
        if (converged)
            break;
    }

    // Singular values = column norms; sort descending.
    std::vector<double> s(n);
    for (unsigned j = 0; j < n; ++j)
        s[j] = std::sqrt(coldot(j, j));
    std::vector<unsigned> order(n);
    std::iota(order.begin(), order.end(), 0u);
    std::stable_sort(order.begin(), order.end(),
                     [&](unsigned x, unsigned y) {
                         return s[x] > s[y];
                     });

    SvdResult res;
    res.u = Matrix(m, n);
    res.v = Matrix(n, n);
    res.s.resize(n);
    for (unsigned jj = 0; jj < n; ++jj) {
        unsigned j = order[jj];
        res.s[jj] = s[j];
        double inv = s[j] > 1e-300 ? 1.0 / s[j] : 0.0;
        for (unsigned r = 0; r < m; ++r)
            res.u(r, jj) = u(r, j) * inv;
        for (unsigned r = 0; r < n; ++r)
            res.v(r, jj) = v(r, j);
    }
    return res;
}

} // namespace synchro::dsp
