#include "dsp/stereo.hh"

#include <algorithm>
#include <cmath>

#include "common/log.hh"
#include "dsp/svd.hh"

namespace synchro::dsp
{

namespace
{

std::vector<Match>
matchesFromPairing(const Matrix &p)
{
    // An entry is a match when it is the maximum of both its row and
    // its column (Pilu's criterion).
    std::vector<Match> out;
    for (unsigned i = 0; i < p.rows(); ++i) {
        unsigned best_j = 0;
        double best = -1e300;
        for (unsigned j = 0; j < p.cols(); ++j) {
            if (p(i, j) > best) {
                best = p(i, j);
                best_j = j;
            }
        }
        bool col_max = true;
        for (unsigned k = 0; k < p.rows(); ++k) {
            if (p(k, best_j) > best) {
                col_max = false;
                break;
            }
        }
        if (col_max)
            out.push_back({i, best_j, best});
    }
    return out;
}

Matrix
pairingFromProximity(Matrix g)
{
    const bool transpose = g.rows() < g.cols();
    if (transpose)
        g = g.transposed();
    SvdResult svd = jacobiSvd(g);
    // Replace singular values with ones: P = U * V^T.
    Matrix p = svd.u * svd.v.transposed();
    return transpose ? p.transposed() : p;
}

} // namespace

std::vector<Match>
svdCorrelate(const std::vector<Feature> &left,
             const std::vector<Feature> &right, double sigma)
{
    if (left.empty() || right.empty())
        return {};
    Matrix g(unsigned(left.size()), unsigned(right.size()));
    for (unsigned i = 0; i < left.size(); ++i) {
        for (unsigned j = 0; j < right.size(); ++j) {
            double dx = double(left[i].x) - double(right[j].x);
            double dy = double(left[i].y) - double(right[j].y);
            g(i, j) = std::exp(-(dx * dx + dy * dy) /
                               (2.0 * sigma * sigma));
        }
    }
    Matrix p = pairingFromProximity(g);
    return matchesFromPairing(p);
}

std::vector<Match>
svdCorrelate(const Image &left_img, const std::vector<Feature> &left,
             const Image &right_img,
             const std::vector<Feature> &right, double sigma,
             unsigned w)
{
    if (left.empty() || right.empty())
        return {};
    auto patch_corr = [&](const Feature &a, const Feature &b) {
        // Normalized cross-correlation of (2w+1)^2 patches.
        double ma = 0, mb = 0;
        int n = int(2 * w + 1) * int(2 * w + 1);
        for (int j = -int(w); j <= int(w); ++j)
            for (int i = -int(w); i <= int(w); ++i) {
                ma += left_img.at(int(a.x) + i, int(a.y) + j);
                mb += right_img.at(int(b.x) + i, int(b.y) + j);
            }
        ma /= n;
        mb /= n;
        double num = 0, da = 0, db = 0;
        for (int j = -int(w); j <= int(w); ++j)
            for (int i = -int(w); i <= int(w); ++i) {
                double va =
                    left_img.at(int(a.x) + i, int(a.y) + j) - ma;
                double vb =
                    right_img.at(int(b.x) + i, int(b.y) + j) - mb;
                num += va * vb;
                da += va * va;
                db += vb * vb;
            }
        double den = std::sqrt(da * db);
        return den > 1e-12 ? num / den : 0.0;
    };

    Matrix g(unsigned(left.size()), unsigned(right.size()));
    for (unsigned i = 0; i < left.size(); ++i) {
        for (unsigned j = 0; j < right.size(); ++j) {
            double dx = double(left[i].x) - double(right[j].x);
            double dy = double(left[i].y) - double(right[j].y);
            double prox = std::exp(-(dx * dx + dy * dy) /
                                   (2.0 * sigma * sigma));
            double corr = 0.5 * (patch_corr(left[i], right[j]) + 1.0);
            g(i, j) = prox * corr;
        }
    }
    Matrix p = pairingFromProximity(g);
    return matchesFromPairing(p);
}

Image
padLeftReplicate(const Image &img, unsigned n)
{
    Image out(img.width() + n, img.height());
    for (unsigned y = 0; y < img.height(); ++y)
        for (unsigned x = 0; x < out.width(); ++x)
            out(x, y) = img.at(int(x) - int(n), int(y));
    return out;
}

Image
prefilter3(const Image &img)
{
    Image out(img.width(), img.height());
    for (unsigned y = 0; y < img.height(); ++y) {
        for (unsigned x = 0; x < img.width(); ++x) {
            unsigned v = unsigned(img.at(int(x) - 1, int(y))) +
                         2u * img.at(int(x), int(y)) +
                         img.at(int(x) + 1, int(y));
            out(x, y) = uint8_t((v + 2) >> 2);
        }
    }
    return out;
}

std::vector<uint8_t>
blockMatchDisparities(const Image &left, const Image &right_padded,
                      unsigned bsize, unsigned max_disp)
{
    const unsigned w = left.width(), h = left.height();
    sync_assert(bsize > 0 && w % bsize == 0 && h % bsize == 0,
                "block size %u must tile the %ux%u image", bsize, w,
                h);
    sync_assert(right_padded.width() == w + max_disp &&
                    right_padded.height() == h,
                "right image must be padLeftReplicate'd by max_disp");
    sync_assert(max_disp >= 1 && max_disp <= 63,
                "1..63 disparities (the sadKey field)");
    sync_assert(uint64_t(bsize) * bsize * 255 < (1u << 25),
                "block too large for the sadKey SAD field (keys "
                "must stay positive in the chip's signed min "
                "reduction)");

    std::vector<uint8_t> out;
    out.reserve(size_t(w / bsize) * (h / bsize));
    for (unsigned by = 0; by < h; by += bsize) {
        for (unsigned bx = 0; bx < w; bx += bsize) {
            uint32_t best = UINT32_MAX;
            for (unsigned d = 0; d < max_disp; ++d) {
                uint32_t sad = 0;
                for (unsigned j = 0; j < bsize; ++j)
                    for (unsigned i = 0; i < bsize; ++i)
                        sad += uint32_t(std::abs(
                            int(left(bx + i, by + j)) -
                            int(right_padded(bx + i + max_disp - d,
                                             by + j))));
                best = std::min(best, sadKey(sad, d));
            }
            out.push_back(uint8_t(best & 63));
        }
    }
    return out;
}

std::vector<uint8_t>
stereoBlockDisparities(const Image &left, const Image &right,
                       unsigned bsize, unsigned max_disp)
{
    return blockMatchDisparities(
        prefilter3(left),
        prefilter3(padLeftReplicate(right, max_disp)), bsize,
        max_disp);
}

std::vector<double>
disparities(const std::vector<Feature> &left,
            const std::vector<Feature> &right,
            const std::vector<Match> &matches)
{
    std::vector<double> out;
    out.reserve(matches.size());
    for (const Match &m : matches) {
        sync_assert(m.left < left.size() && m.right < right.size(),
                    "match indices out of range");
        out.push_back(double(left[m.left].x) -
                      double(right[m.right].x));
    }
    return out;
}

} // namespace synchro::dsp
