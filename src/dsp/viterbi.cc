#include "dsp/viterbi.hh"

#include <algorithm>

#include "common/bitfield.hh"
#include "common/log.hh"

namespace synchro::dsp
{

namespace
{

/** Output pair of the encoder in state @p s consuming bit @p b. */
inline std::pair<unsigned, unsigned>
codeBits(unsigned s, unsigned b)
{
    // Shift register holds the K-1 previous bits; the new bit enters
    // at the MSB side (state = older bits toward the LSB).
    unsigned reg = (b << (ConvK - 1)) | s;
    unsigned c0 = popCount(reg & ConvG0) & 1;
    unsigned c1 = popCount(reg & ConvG1) & 1;
    return {c0, c1};
}

} // namespace

unsigned
convCodePair(unsigned state, unsigned bit)
{
    auto [c0, c1] = codeBits(state & (ConvStates - 1), bit & 1);
    return c0 | (c1 << 1);
}

std::vector<uint8_t>
convEncode(const std::vector<uint8_t> &bits, bool add_tail)
{
    std::vector<uint8_t> out;
    out.reserve(2 * (bits.size() + ConvK - 1));
    unsigned state = 0;
    auto push = [&](unsigned b) {
        auto [c0, c1] = codeBits(state, b);
        out.push_back(uint8_t(c0));
        out.push_back(uint8_t(c1));
        state = ((b << (ConvK - 1)) | state) >> 1;
    };
    for (uint8_t b : bits)
        push(b & 1);
    if (add_tail) {
        for (unsigned i = 0; i < ConvK - 1; ++i)
            push(0);
    }
    return out;
}

void
viterbiAcsStage(std::vector<uint32_t> &metrics,
                std::vector<uint8_t> &survivors, unsigned r0,
                unsigned r1)
{
    sync_assert(metrics.size() == ConvStates, "need 64 metrics");
    survivors.assign(ConvStates, 0);
    std::vector<uint32_t> next(ConvStates, UINT32_MAX);

    for (unsigned s = 0; s < ConvStates; ++s) {
        // New state s is reached from predecessors p0/p1 by shifting
        // the new bit b = MSB of s into the register.
        unsigned b = s >> (ConvK - 2);      // bit that was consumed
        unsigned low = s & (ConvStates / 2 - 1);
        for (unsigned tail : {0u, 1u}) {
            unsigned pred = (low << 1) | tail;
            auto [c0, c1] = codeBits(pred, b);
            uint32_t bm = (c0 ^ r0) + (c1 ^ r1);
            uint32_t cand = metrics[pred] + bm;
            if (cand < next[s]) {
                next[s] = cand;
                survivors[s] = uint8_t(tail);
            }
        }
    }
    metrics = std::move(next);
}

std::vector<uint8_t>
viterbiDecode(const std::vector<uint8_t> &coded, bool tailed)
{
    if (coded.size() % 2 != 0)
        fatal("viterbiDecode: need an even number of code bits");
    const size_t stages = coded.size() / 2;

    std::vector<uint32_t> metrics(ConvStates, 1u << 20);
    metrics[0] = 0; // encoder starts in state 0

    std::vector<std::vector<uint8_t>> survivors(stages);
    for (size_t t = 0; t < stages; ++t)
        viterbiAcsStage(metrics, survivors[t], coded[2 * t],
                        coded[2 * t + 1]);

    // Terminal state: 0 when tail bits flushed, else the best metric.
    unsigned state = 0;
    if (!tailed) {
        state = unsigned(std::min_element(metrics.begin(),
                                          metrics.end()) -
                         metrics.begin());
    }

    std::vector<uint8_t> bits(stages);
    for (size_t t = stages; t-- > 0;) {
        unsigned b = state >> (ConvK - 2);
        unsigned tail = survivors[t][state];
        bits[t] = uint8_t(b);
        state = ((state & (ConvStates / 2 - 1)) << 1) | tail;
    }

    if (tailed) {
        if (bits.size() < ConvK - 1)
            fatal("viterbiDecode: shorter than the tail");
        bits.resize(bits.size() - (ConvK - 1));
    }
    return bits;
}

unsigned
acsCrossTileWords(unsigned tiles)
{
    if (tiles == 0)
        fatal("acsCrossTileWords: need at least one tile");
    if (tiles == 1)
        return 0;
    if (ConvStates % tiles != 0)
        fatal("acsCrossTileWords: %u tiles must divide %u states",
              tiles, ConvStates);
    unsigned per_tile = ConvStates / tiles;
    // A metric fetched once per stage can be reused by every state on
    // the same tile, so count distinct (consumer tile, predecessor)
    // pairs whose predecessor lives elsewhere.
    std::vector<char> seen(ConvStates * tiles, 0);
    unsigned cross = 0;
    for (unsigned s = 0; s < ConvStates; ++s) {
        unsigned owner = s / per_tile;
        unsigned low = s & (ConvStates / 2 - 1);
        for (unsigned tail : {0u, 1u}) {
            unsigned pred = (low << 1) | tail;
            if (pred / per_tile != owner &&
                !seen[owner * ConvStates + pred]) {
                seen[owner * ConvStates + pred] = 1;
                ++cross;
            }
        }
    }
    return cross;
}

} // namespace synchro::dsp
