/**
 * @file
 * SVD-based point feature correlation (paper Section 3: Stereo
 * Vision's second stage, after Tomasi-Kanade extraction; "for point
 * feature correlation, singular value decomposition was used" —
 * Pilu's spectral correspondence method).
 *
 * Build a Gaussian proximity/similarity matrix G between the two
 * feature sets, take G = U S V^T, replace S with ones, and read
 * matches off the rows/columns of P = U V^T where the entry is the
 * maximum of both its row and its column.
 */

#ifndef SYNC_DSP_STEREO_HH
#define SYNC_DSP_STEREO_HH

#include <vector>

#include "dsp/image.hh"
#include "dsp/tomasi.hh"

namespace synchro::dsp
{

struct Match
{
    unsigned left;  //!< index into the left feature list
    unsigned right; //!< index into the right feature list
    double strength;
};

/**
 * Pilu's SVD correspondence between two feature sets.
 *
 * @param sigma    Gaussian radius of the proximity term (pixels)
 * @param patches  optional appearance term: normalized patch
 *                 correlation sampled from the two images
 */
std::vector<Match> svdCorrelate(const std::vector<Feature> &left,
                                const std::vector<Feature> &right,
                                double sigma = 30.0);

/** Appearance-aware variant using (2w+1)^2 patches from each image. */
std::vector<Match> svdCorrelate(const Image &left_img,
                                const std::vector<Feature> &left,
                                const Image &right_img,
                                const std::vector<Feature> &right,
                                double sigma = 30.0, unsigned w = 3);

/**
 * Stereo disparity of matched features (left.x - right.x); the Mars
 * Rover pipeline converts this to depth.
 */
std::vector<double> disparities(const std::vector<Feature> &left,
                                const std::vector<Feature> &right,
                                const std::vector<Match> &matches);

/// @name Dense block-matching disparity (the mapped-chip golden)
///
/// The feature pipeline above is the paper's full Mars-Rover stack;
/// the integer chain below is the dense correlation core the
/// simulated chip executes (apps/stereo_runner): a horizontal
/// prefilter, then per-block SAD search over a disparity range. All
/// arithmetic is exact in integers so the chip kernels can match it
/// bit for bit.
/// @{

/**
 * Replicate-pad @p img on the left by @p n columns (column 0
 * repeated), so index x+n on the result reads clamped index x of the
 * original — the layout the chip preloads so disparity-shifted reads
 * never need a bounds check.
 */
Image padLeftReplicate(const Image &img, unsigned n);

/**
 * Horizontal [1 2 1]/4 bandpass-prep smoothing with rounding and
 * edge clamping:
 *
 *     out(x, y) = (at(x-1, y) + 2 at(x, y) + at(x+1, y) + 2) >> 2
 *
 * — the intensity prefilter real correlation stereo runs before SAD
 * so block matching is less sensitive to per-camera bias.
 */
Image prefilter3(const Image &img);

/**
 * The packed search key the SAD minimization orders by: SAD in the
 * high bits, disparity in the low 6. Minimizing the key gives the
 * lowest SAD and breaks ties toward the smaller disparity — the
 * exact rule the chip's branch-free `min` reduction implements.
 */
inline uint32_t
sadKey(uint32_t sad, unsigned d)
{
    return (sad << 6) | d;
}

/**
 * Dense block-matching disparity between a filtered left image and a
 * filtered *padded* right image (padLeftReplicate by @p max_disp,
 * then prefilter3). For every bsize x bsize block (raster order) the
 * SAD over disparities d in [0, max_disp) compares the left block at
 * x with the padded right image at x + max_disp - d; the returned
 * byte is the argmin disparity under the sadKey() ordering.
 *
 * Requires bsize | width and bsize | height, max_disp <= 63 (the
 * key's disparity field) and bsize*bsize*255 < 2^25 (keys must stay
 * positive: the chip folds them through a signed `min` reduction).
 */
std::vector<uint8_t> blockMatchDisparities(const Image &left,
                                           const Image &right_padded,
                                           unsigned bsize,
                                           unsigned max_disp);

/** The whole golden chain: pad, prefilter both, block-match. */
std::vector<uint8_t> stereoBlockDisparities(const Image &left,
                                            const Image &right,
                                            unsigned bsize,
                                            unsigned max_disp);

/// @}

} // namespace synchro::dsp

#endif // SYNC_DSP_STEREO_HH
