/**
 * @file
 * SVD-based point feature correlation (paper Section 3: Stereo
 * Vision's second stage, after Tomasi-Kanade extraction; "for point
 * feature correlation, singular value decomposition was used" —
 * Pilu's spectral correspondence method).
 *
 * Build a Gaussian proximity/similarity matrix G between the two
 * feature sets, take G = U S V^T, replace S with ones, and read
 * matches off the rows/columns of P = U V^T where the entry is the
 * maximum of both its row and its column.
 */

#ifndef SYNC_DSP_STEREO_HH
#define SYNC_DSP_STEREO_HH

#include <vector>

#include "dsp/image.hh"
#include "dsp/tomasi.hh"

namespace synchro::dsp
{

struct Match
{
    unsigned left;  //!< index into the left feature list
    unsigned right; //!< index into the right feature list
    double strength;
};

/**
 * Pilu's SVD correspondence between two feature sets.
 *
 * @param sigma    Gaussian radius of the proximity term (pixels)
 * @param patches  optional appearance term: normalized patch
 *                 correlation sampled from the two images
 */
std::vector<Match> svdCorrelate(const std::vector<Feature> &left,
                                const std::vector<Feature> &right,
                                double sigma = 30.0);

/** Appearance-aware variant using (2w+1)^2 patches from each image. */
std::vector<Match> svdCorrelate(const Image &left_img,
                                const std::vector<Feature> &left,
                                const Image &right_img,
                                const std::vector<Feature> &right,
                                double sigma = 30.0, unsigned w = 3);

/**
 * Stereo disparity of matched features (left.x - right.x); the Mars
 * Rover pipeline converts this to depth.
 */
std::vector<double> disparities(const std::vector<Feature> &left,
                                const std::vector<Feature> &right,
                                const std::vector<Match> &matches);

} // namespace synchro::dsp

#endif // SYNC_DSP_STEREO_HH
