/**
 * @file
 * Tomasi-Kanade point feature extraction (paper Section 3: Stereo
 * Vision's first stage, mapped to 16 tiles at 310 MHz).
 *
 * For each pixel, build the 2x2 gradient structure matrix over a
 * window and score by its minimum eigenvalue; features are local
 * maxima above a threshold ("good features to track").
 */

#ifndef SYNC_DSP_TOMASI_HH
#define SYNC_DSP_TOMASI_HH

#include <vector>

#include "dsp/image.hh"

namespace synchro::dsp
{

struct Feature
{
    unsigned x = 0;
    unsigned y = 0;
    double score = 0.0; //!< min eigenvalue of the structure matrix
};

/**
 * Min-eigenvalue response map of @p img with a (2w+1)^2 window
 * (central-difference gradients, edge-clamped).
 */
std::vector<double> minEigImage(const Image &img, unsigned w = 2);

/**
 * Extract up to @p max_features features: local maxima of the
 * response map above @p quality * max_response, greedily taken in
 * descending score with a @p min_dist exclusion radius.
 */
std::vector<Feature> extractFeatures(const Image &img,
                                     unsigned max_features = 200,
                                     double quality = 0.01,
                                     unsigned min_dist = 8,
                                     unsigned window = 2);

} // namespace synchro::dsp

#endif // SYNC_DSP_TOMASI_HH
