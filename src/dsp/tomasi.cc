#include "dsp/tomasi.hh"

#include <algorithm>
#include <cmath>

namespace synchro::dsp
{

std::vector<double>
minEigImage(const Image &img, unsigned w)
{
    const unsigned width = img.width();
    const unsigned height = img.height();
    std::vector<double> gx(size_t(width) * height);
    std::vector<double> gy(size_t(width) * height);
    for (unsigned y = 0; y < height; ++y) {
        for (unsigned x = 0; x < width; ++x) {
            gx[size_t(y) * width + x] =
                0.5 * (img.at(int(x) + 1, int(y)) -
                       img.at(int(x) - 1, int(y)));
            gy[size_t(y) * width + x] =
                0.5 * (img.at(int(x), int(y) + 1) -
                       img.at(int(x), int(y) - 1));
        }
    }

    std::vector<double> response(size_t(width) * height, 0.0);
    for (unsigned y = 0; y < height; ++y) {
        for (unsigned x = 0; x < width; ++x) {
            double sxx = 0, syy = 0, sxy = 0;
            for (int j = -int(w); j <= int(w); ++j) {
                for (int i = -int(w); i <= int(w); ++i) {
                    int xx = std::clamp(int(x) + i, 0,
                                        int(width) - 1);
                    int yy = std::clamp(int(y) + j, 0,
                                        int(height) - 1);
                    double dx = gx[size_t(yy) * width + xx];
                    double dy = gy[size_t(yy) * width + xx];
                    sxx += dx * dx;
                    syy += dy * dy;
                    sxy += dx * dy;
                }
            }
            // Min eigenvalue of [[sxx, sxy], [sxy, syy]].
            double tr = 0.5 * (sxx + syy);
            double det = std::sqrt(0.25 * (sxx - syy) * (sxx - syy) +
                                   sxy * sxy);
            response[size_t(y) * width + x] = tr - det;
        }
    }
    return response;
}

std::vector<Feature>
extractFeatures(const Image &img, unsigned max_features,
                double quality, unsigned min_dist, unsigned window)
{
    const unsigned width = img.width();
    const unsigned height = img.height();
    std::vector<double> resp = minEigImage(img, window);

    double max_resp = 0;
    for (double r : resp)
        max_resp = std::max(max_resp, r);
    double threshold = quality * max_resp;

    std::vector<Feature> candidates;
    for (unsigned y = 1; y + 1 < height; ++y) {
        for (unsigned x = 1; x + 1 < width; ++x) {
            double r = resp[size_t(y) * width + x];
            if (r < threshold)
                continue;
            // 3x3 local maximum.
            bool is_max = true;
            for (int j = -1; j <= 1 && is_max; ++j)
                for (int i = -1; i <= 1; ++i) {
                    if (i == 0 && j == 0)
                        continue;
                    if (resp[size_t(y + j) * width + (x + i)] > r) {
                        is_max = false;
                        break;
                    }
                }
            if (is_max)
                candidates.push_back({x, y, r});
        }
    }
    std::stable_sort(candidates.begin(), candidates.end(),
                     [](const Feature &a, const Feature &b) {
                         return a.score > b.score;
                     });

    std::vector<Feature> out;
    for (const Feature &f : candidates) {
        if (out.size() >= max_features)
            break;
        bool far_enough = true;
        for (const Feature &g : out) {
            long dx = long(f.x) - long(g.x);
            long dy = long(f.y) - long(g.y);
            if (dx * dx + dy * dy <
                long(min_dist) * long(min_dist)) {
                far_enough = false;
                break;
            }
        }
        if (far_enough)
            out.push_back(f);
    }
    return out;
}

} // namespace synchro::dsp
