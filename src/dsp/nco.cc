#include "dsp/nco.hh"

#include <cmath>

#include "common/log.hh"

namespace synchro::dsp
{

const std::vector<int16_t> &
Nco::sineTable()
{
    static const std::vector<int16_t> table = [] {
        std::vector<int16_t> t(1u << TableBits);
        for (size_t i = 0; i < t.size(); ++i) {
            double phi = 2.0 * M_PI * double(i) / double(t.size());
            t[i] = toQ15(std::sin(phi) * 0.999969); // avoid +1.0
        }
        return t;
    }();
    return table;
}

Nco::Nco(double freq_hz, double sample_hz)
{
    if (sample_hz <= 0 || freq_hz < 0 || freq_hz * 2 >= sample_hz)
        fatal("Nco: need 0 <= freq < sample_rate/2 (got %g at %g)",
              freq_hz, sample_hz);
    step_ = uint32_t(freq_hz / sample_hz * 4294967296.0);
}

CplxQ15
Nco::next()
{
    const auto &tab = sineTable();
    uint32_t idx = phase_ >> (32 - TableBits);
    uint32_t quarter = 1u << (TableBits - 2);
    // cos(phi) = sin(phi + pi/2).
    int16_t cosv = tab[(idx + quarter) & (tab.size() - 1)];
    int16_t sinv = tab[idx];
    phase_ += step_;
    return {cosv, int16_t(-sinv)};
}

std::vector<CplxQ15>
Nco::generate(size_t n)
{
    std::vector<CplxQ15> out;
    out.reserve(n);
    for (size_t i = 0; i < n; ++i)
        out.push_back(next());
    return out;
}

} // namespace synchro::dsp
