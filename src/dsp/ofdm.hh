/**
 * @file
 * 802.11a OFDM physical layer: the end-to-end transmit and receive
 * chains the paper's Section 3 describes ("The four major components
 * in the 802.11a receiver are the FFT, Demodulation, De-Interleaving
 * and a K=7 Viterbi Decoder"). Used by the wifi example and the
 * integration tests; each receive stage maps onto one Synchroscalar
 * column group.
 *
 * Simplifications vs the full standard (documented in DESIGN.md):
 * rate-1/2 coding only (no puncturing), no scrambler, no
 * PLCP preamble/SIGNAL field — the paper evaluates the steady-state
 * data path, which these omissions do not change.
 */

#ifndef SYNC_DSP_OFDM_HH
#define SYNC_DSP_OFDM_HH

#include <complex>
#include <cstdint>
#include <vector>

#include "common/rng.hh"
#include "dsp/qam.hh"

namespace synchro::dsp
{

constexpr unsigned OfdmFftSize = 64;
constexpr unsigned OfdmDataCarriers = 48;
constexpr unsigned OfdmPilots = 4;
constexpr unsigned OfdmCpLen = 16; //!< 0.8 us guard interval

struct OfdmConfig
{
    Modulation modulation = Modulation::QPSK;

    /** Data bits conveyed per OFDM symbol (rate-1/2 coding). */
    unsigned
    dataBitsPerSymbol() const
    {
        return OfdmDataCarriers * bitsPerSymbol(modulation) / 2;
    }

    /** Coded bits per OFDM symbol (N_CBPS). */
    unsigned
    codedBitsPerSymbol() const
    {
        return OfdmDataCarriers * bitsPerSymbol(modulation);
    }
};

/** Indices of the 48 data subcarriers (-26..26 minus pilots/DC),
 * in FFT bin order. */
const std::vector<unsigned> &dataCarrierBins();

/** Indices of the 4 pilot bins (-21, -7, 7, 21). */
const std::vector<unsigned> &pilotBins();

/**
 * Transmit: data bits -> convolutional code -> per-symbol
 * interleaving -> QAM -> IFFT + cyclic prefix. Pads the tail symbol
 * with zero bits. Returns time-domain samples.
 */
std::vector<std::complex<double>> ofdmTransmit(
    const std::vector<uint8_t> &bits, const OfdmConfig &cfg);

/**
 * Receive the output of ofdmTransmit (plus channel impairments):
 * FFT -> demap -> deinterleave -> Viterbi. Returns the recovered
 * data bits (including any TX padding; callers trim to their
 * original length).
 */
std::vector<uint8_t> ofdmReceive(
    const std::vector<std::complex<double>> &samples,
    const OfdmConfig &cfg);

/** Add white Gaussian noise at the given per-sample SNR. */
void addAwgn(std::vector<std::complex<double>> &samples,
             double snr_db, Rng &rng);

/** Bit error rate between transmitted and received bit vectors. */
double bitErrorRate(const std::vector<uint8_t> &tx,
                    const std::vector<uint8_t> &rx);

} // namespace synchro::dsp

#endif // SYNC_DSP_OFDM_HH
