#include "dsp/mixer.hh"

#include "common/log.hh"

namespace synchro::dsp
{

std::vector<CplxQ15>
mixBlock(const std::vector<int16_t> &x, const std::vector<CplxQ15> &lo)
{
    if (x.size() != lo.size())
        fatal("mixBlock: %zu samples vs %zu LO samples", x.size(),
              lo.size());
    std::vector<CplxQ15> out(x.size());
    for (size_t i = 0; i < x.size(); ++i)
        out[i] = mixSample(x[i], lo[i]);
    return out;
}

std::vector<CplxQ15>
mixBlock(const std::vector<CplxQ15> &x, const std::vector<CplxQ15> &lo)
{
    if (x.size() != lo.size())
        fatal("mixBlock: %zu samples vs %zu LO samples", x.size(),
              lo.size());
    std::vector<CplxQ15> out(x.size());
    for (size_t i = 0; i < x.size(); ++i)
        out[i] = mulCplxQ15(x[i], lo[i]);
    return out;
}

} // namespace synchro::dsp
