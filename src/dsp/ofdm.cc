#include "dsp/ofdm.hh"

#include <cmath>

#include "common/log.hh"
#include "dsp/fft.hh"
#include "dsp/interleaver.hh"
#include "dsp/viterbi.hh"

namespace synchro::dsp
{

const std::vector<unsigned> &
dataCarrierBins()
{
    static const std::vector<unsigned> bins = [] {
        std::vector<unsigned> out;
        for (int k = -26; k <= 26; ++k) {
            if (k == 0 || k == -21 || k == -7 || k == 7 || k == 21)
                continue;
            out.push_back(unsigned((k + int(OfdmFftSize)) %
                                   int(OfdmFftSize)));
        }
        return out;
    }();
    return bins;
}

const std::vector<unsigned> &
pilotBins()
{
    static const std::vector<unsigned> bins = [] {
        std::vector<unsigned> out;
        for (int k : {-21, -7, 7, 21}) {
            out.push_back(unsigned((k + int(OfdmFftSize)) %
                                   int(OfdmFftSize)));
        }
        return out;
    }();
    return bins;
}

std::vector<std::complex<double>>
ofdmTransmit(const std::vector<uint8_t> &bits, const OfdmConfig &cfg)
{
    // Convolutional encoding (rate 1/2, with tail).
    std::vector<uint8_t> coded = convEncode(bits, true);

    // Pad to a whole number of OFDM symbols.
    unsigned n_cbps = cfg.codedBitsPerSymbol();
    while (coded.size() % n_cbps != 0)
        coded.push_back(0);

    Interleaver il(cfg.modulation);
    std::vector<std::complex<double>> out;
    out.reserve((coded.size() / n_cbps) *
                (OfdmFftSize + OfdmCpLen));

    for (size_t off = 0; off < coded.size(); off += n_cbps) {
        std::vector<uint8_t> block(coded.begin() + off,
                                   coded.begin() + off + n_cbps);
        std::vector<uint8_t> inter = il.interleave(block);
        auto symbols = qamMap(inter, cfg.modulation);
        sync_assert(symbols.size() == OfdmDataCarriers,
                    "mapper emitted %zu carriers", symbols.size());

        std::vector<Cplx> freq(OfdmFftSize, Cplx(0, 0));
        const auto &bins = dataCarrierBins();
        for (unsigned i = 0; i < OfdmDataCarriers; ++i)
            freq[bins[i]] = symbols[i];
        for (unsigned p : pilotBins())
            freq[p] = Cplx(1.0, 0.0); // static all-ones pilots

        ifft(freq);
        // Cyclic prefix then body.
        for (unsigned i = 0; i < OfdmCpLen; ++i)
            out.push_back(freq[OfdmFftSize - OfdmCpLen + i]);
        for (unsigned i = 0; i < OfdmFftSize; ++i)
            out.push_back(freq[i]);
    }
    return out;
}

std::vector<uint8_t>
ofdmReceive(const std::vector<std::complex<double>> &samples,
            const OfdmConfig &cfg)
{
    const unsigned sym_len = OfdmFftSize + OfdmCpLen;
    if (samples.size() % sym_len != 0)
        fatal("ofdmReceive: %zu samples not a whole number of "
              "symbols",
              samples.size());
    unsigned n_cbps = cfg.codedBitsPerSymbol();
    Interleaver il(cfg.modulation);

    std::vector<uint8_t> coded;
    coded.reserve(samples.size() / sym_len * n_cbps);
    for (size_t off = 0; off < samples.size(); off += sym_len) {
        std::vector<Cplx> freq(samples.begin() + off + OfdmCpLen,
                               samples.begin() + off + sym_len);
        fft(freq);
        std::vector<Cplx> symbols(OfdmDataCarriers);
        const auto &bins = dataCarrierBins();
        for (unsigned i = 0; i < OfdmDataCarriers; ++i)
            symbols[i] = freq[bins[i]];
        auto bits = qamDemap(symbols, cfg.modulation);
        auto deinter = il.deinterleave(bits);
        coded.insert(coded.end(), deinter.begin(), deinter.end());
    }

    // The encoder emitted 2*(data+tail) bits; everything after is
    // TX padding that the decoder must not see as code bits. We
    // cannot know the original length here, so decode everything and
    // let the tail-termination pick the right path; padding decodes
    // to trailing bits the caller trims.
    return viterbiDecode(coded, false);
}

void
addAwgn(std::vector<std::complex<double>> &samples, double snr_db,
        Rng &rng)
{
    double power = 0;
    for (const auto &s : samples)
        power += std::norm(s);
    power /= double(samples.size());
    double noise_power = power / std::pow(10.0, snr_db / 10.0);
    double sigma = std::sqrt(noise_power / 2.0);
    for (auto &s : samples)
        s += std::complex<double>(sigma * rng.gauss(),
                                  sigma * rng.gauss());
}

double
bitErrorRate(const std::vector<uint8_t> &tx,
             const std::vector<uint8_t> &rx)
{
    size_t n = std::min(tx.size(), rx.size());
    if (n == 0)
        return 0.0;
    size_t errors = 0;
    for (size_t i = 0; i < n; ++i)
        errors += (tx[i] & 1) != (rx[i] & 1);
    return double(errors) / double(n);
}

} // namespace synchro::dsp
