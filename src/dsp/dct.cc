#include "dsp/dct.hh"

#include <cmath>

#include "common/fixed.hh"

namespace synchro::dsp
{

namespace
{

/** Orthonormal DCT-II basis c[k][n] = a(k) cos((2n+1)k pi / 16). */
const std::array<std::array<double, 8>, 8> &
basis()
{
    static const auto b = [] {
        std::array<std::array<double, 8>, 8> m{};
        for (unsigned k = 0; k < 8; ++k) {
            double a = k == 0 ? std::sqrt(1.0 / 8.0)
                              : std::sqrt(2.0 / 8.0);
            for (unsigned n = 0; n < 8; ++n) {
                m[k][n] =
                    a * std::cos((2.0 * n + 1.0) * k * M_PI / 16.0);
            }
        }
        return m;
    }();
    return b;
}

/** The same basis in Q13 for the fixed-point path. */
const std::array<std::array<int16_t, 8>, 8> &
basisQ13()
{
    static const auto b = [] {
        std::array<std::array<int16_t, 8>, 8> m{};
        for (unsigned k = 0; k < 8; ++k) {
            for (unsigned n = 0; n < 8; ++n) {
                m[k][n] = int16_t(
                    std::lround(basis()[k][n] * 8192.0));
            }
        }
        return m;
    }();
    return b;
}

} // namespace

Block8x8d
dct8x8Ref(const Block8x8 &in)
{
    const auto &b = basis();
    Block8x8d tmp{}, out{};
    // Rows then columns (separable).
    for (unsigned r = 0; r < 8; ++r) {
        for (unsigned k = 0; k < 8; ++k) {
            double acc = 0;
            for (unsigned n = 0; n < 8; ++n)
                acc += b[k][n] * in[r * 8 + n];
            tmp[r * 8 + k] = acc;
        }
    }
    for (unsigned c = 0; c < 8; ++c) {
        for (unsigned k = 0; k < 8; ++k) {
            double acc = 0;
            for (unsigned n = 0; n < 8; ++n)
                acc += b[k][n] * tmp[n * 8 + c];
            out[k * 8 + c] = acc;
        }
    }
    return out;
}

Block8x8
idct8x8Ref(const Block8x8d &coef)
{
    const auto &b = basis();
    Block8x8d tmp{};
    Block8x8 out{};
    for (unsigned c = 0; c < 8; ++c) {
        for (unsigned n = 0; n < 8; ++n) {
            double acc = 0;
            for (unsigned k = 0; k < 8; ++k)
                acc += b[k][n] * coef[k * 8 + c];
            tmp[n * 8 + c] = acc;
        }
    }
    for (unsigned r = 0; r < 8; ++r) {
        for (unsigned n = 0; n < 8; ++n) {
            double acc = 0;
            for (unsigned k = 0; k < 8; ++k)
                acc += b[k][n] * tmp[r * 8 + k];
            out[r * 8 + n] = sat16(int64_t(std::lround(acc)));
        }
    }
    return out;
}

Block8x8
dct8x8(const Block8x8 &in)
{
    const auto &b = basisQ13();
    Block8x8 tmp{}, out{};
    for (unsigned r = 0; r < 8; ++r) {
        for (unsigned k = 0; k < 8; ++k) {
            int64_t acc = 0;
            for (unsigned n = 0; n < 8; ++n)
                acc += int32_t(b[k][n]) * in[r * 8 + n];
            tmp[r * 8 + k] = sat16((acc + (1 << 12)) >> 13);
        }
    }
    for (unsigned c = 0; c < 8; ++c) {
        for (unsigned k = 0; k < 8; ++k) {
            int64_t acc = 0;
            for (unsigned n = 0; n < 8; ++n)
                acc += int32_t(b[k][n]) * tmp[n * 8 + c];
            out[k * 8 + c] = sat16((acc + (1 << 12)) >> 13);
        }
    }
    return out;
}

Block8x8
idct8x8(const Block8x8 &coef)
{
    const auto &b = basisQ13();
    Block8x8 tmp{}, out{};
    for (unsigned c = 0; c < 8; ++c) {
        for (unsigned n = 0; n < 8; ++n) {
            int64_t acc = 0;
            for (unsigned k = 0; k < 8; ++k)
                acc += int32_t(b[k][n]) * coef[k * 8 + c];
            tmp[n * 8 + c] = sat16((acc + (1 << 12)) >> 13);
        }
    }
    for (unsigned r = 0; r < 8; ++r) {
        for (unsigned n = 0; n < 8; ++n) {
            int64_t acc = 0;
            for (unsigned k = 0; k < 8; ++k)
                acc += int32_t(b[k][n]) * tmp[r * 8 + k];
            out[r * 8 + n] = sat16((acc + (1 << 12)) >> 13);
        }
    }
    return out;
}

Block8x8
quantize(const Block8x8 &coef, int qp)
{
    Block8x8 out{};
    int q = 2 * qp;
    for (unsigned i = 0; i < 64; ++i) {
        int v = coef[i];
        out[i] = int16_t(v >= 0 ? v / q : -((-v) / q));
    }
    return out;
}

Block8x8
dequantize(const Block8x8 &levels, int qp)
{
    Block8x8 out{};
    for (unsigned i = 0; i < 64; ++i) {
        int l = levels[i];
        if (l == 0)
            out[i] = 0;
        else if (l > 0)
            out[i] = int16_t(qp * (2 * l + 1));
        else
            out[i] = int16_t(-qp * (2 * (-l) + 1));
    }
    return out;
}

const std::array<uint8_t, 64> &
zigzagOrder()
{
    static const std::array<uint8_t, 64> order = [] {
        std::array<uint8_t, 64> o{};
        unsigned idx = 0;
        for (unsigned s = 0; s < 15; ++s) {
            if (s % 2 == 0) { // up-right diagonals
                for (int r = int(std::min(s, 7u)); r >= 0 &&
                     int(s) - r <= 7; --r) {
                    unsigned c = s - unsigned(r);
                    o[idx++] = uint8_t(unsigned(r) * 8 + c);
                }
            } else {
                for (int c = int(std::min(s, 7u)); c >= 0 &&
                     int(s) - c <= 7; --c) {
                    unsigned r = s - unsigned(c);
                    o[idx++] = uint8_t(r * 8 + unsigned(c));
                }
            }
        }
        return o;
    }();
    return order;
}

Block8x8
zigzag(const Block8x8 &in)
{
    const auto &o = zigzagOrder();
    Block8x8 out{};
    for (unsigned i = 0; i < 64; ++i)
        out[i] = in[o[i]];
    return out;
}

Block8x8
unzigzag(const Block8x8 &in)
{
    const auto &o = zigzagOrder();
    Block8x8 out{};
    for (unsigned i = 0; i < 64; ++i)
        out[o[i]] = in[i];
    return out;
}

} // namespace synchro::dsp
