/**
 * @file
 * FIR filtering (paper Section 3: the DDC's "compensating 21-tap
 * filter (CFIR) and a 63-tap filter (PFIR)"), Q15 coefficients with
 * 40-bit accumulation exactly like the tile's MAC datapath, so the
 * assembly kernels can be validated bit-exactly against this model.
 */

#ifndef SYNC_DSP_FIR_HH
#define SYNC_DSP_FIR_HH

#include <cstdint>
#include <vector>

#include "common/fixed.hh"

namespace synchro::dsp
{

class FirQ15
{
  public:
    explicit FirQ15(std::vector<int16_t> taps);

    /**
     * Streaming filter step: returns sat16((sum_k taps[k] *
     * x[n-k] + 2^14) >> 15) with 40-bit accumulator saturation,
     * matching the tile's mac/aext sequence.
     */
    int16_t step(int16_t x);

    std::vector<int16_t> process(const std::vector<int16_t> &x);

    /** Block convolution without state (n outputs, zero history). */
    static std::vector<int16_t> convolve(
        const std::vector<int16_t> &taps,
        const std::vector<int16_t> &x);

    const std::vector<int16_t> &taps() const { return taps_; }
    void reset();

  private:
    std::vector<int16_t> taps_;
    std::vector<int16_t> hist_;
    size_t pos_ = 0;
};

/** Windowed-sinc low-pass design quantized to Q15 (Hamming window). */
std::vector<int16_t> designLowpassQ15(unsigned taps,
                                      double cutoff_norm);

/**
 * The DDC's 21-tap CFIR: a low-pass that also compensates the CIC's
 * sinc^N droop in the passband (inverse-sinc weighting).
 */
std::vector<int16_t> designCfir21(unsigned cic_stages, unsigned cic_r);

/** The DDC's 63-tap programmable channel-shaping PFIR. */
std::vector<int16_t> designPfir63(double cutoff_norm = 0.22);

} // namespace synchro::dsp

#endif // SYNC_DSP_FIR_HH
