/**
 * @file
 * Digital mixer: multiplies the real RF input by the NCO's complex
 * local oscillator, shifting the band of interest to DC (the stage
 * the paper maps onto 8 tiles at 120 MHz for the 64 MS/s GSM DDC).
 */

#ifndef SYNC_DSP_MIXER_HH
#define SYNC_DSP_MIXER_HH

#include <vector>

#include "common/fixed.hh"

namespace synchro::dsp
{

/** One mixed sample: x * (lo.re, lo.im), Q15 rounding. */
inline CplxQ15
mixSample(int16_t x, CplxQ15 lo)
{
    return {mulQ15(x, lo.re), mulQ15(x, lo.im)};
}

/** Mix a real block with a matching LO block. */
std::vector<CplxQ15> mixBlock(const std::vector<int16_t> &x,
                              const std::vector<CplxQ15> &lo);

/** Complex-by-complex mixing (used when the input is already IQ). */
std::vector<CplxQ15> mixBlock(const std::vector<CplxQ15> &x,
                              const std::vector<CplxQ15> &lo);

/**
 * Baseband power demodulator: sat16((2^14 + I^2 + Q^2) >> 15),
 * rounded Q15 — the tile's aclr/mac/mac/mac/aext chain, used as the
 * DDC receiver's final stage.
 */
constexpr int16_t
powerDemodQ15(CplxQ15 s)
{
    int64_t acc =
        16384 + int64_t(s.re) * s.re + int64_t(s.im) * s.im;
    return sat16(sat32(acc >> 15));
}

} // namespace synchro::dsp

#endif // SYNC_DSP_MIXER_HH
