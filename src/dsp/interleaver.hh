/**
 * @file
 * 802.11a block interleaver / de-interleaver (paper Section 3:
 * "De-Interleaving" in the receiver). The standard's two-permutation
 * scheme over one OFDM symbol of N_CBPS coded bits: the first spreads
 * adjacent coded bits across nonadjacent subcarriers, the second
 * alternates them between constellation bit significances.
 */

#ifndef SYNC_DSP_INTERLEAVER_HH
#define SYNC_DSP_INTERLEAVER_HH

#include <cstdint>
#include <vector>

#include "dsp/qam.hh"

namespace synchro::dsp
{

class Interleaver
{
  public:
    /**
     * @param m modulation (fixes N_BPSC = bits per subcarrier)
     * @param data_carriers N_SD, 48 for 802.11a
     */
    explicit Interleaver(Modulation m, unsigned data_carriers = 48);

    /** Coded bits per OFDM symbol (N_CBPS). */
    unsigned blockBits() const { return n_cbps_; }

    /** TX permutation of exactly one block. */
    std::vector<uint8_t> interleave(
        const std::vector<uint8_t> &bits) const;

    /** RX inverse permutation of exactly one block. */
    std::vector<uint8_t> deinterleave(
        const std::vector<uint8_t> &bits) const;

    /** The composed permutation: output position of input bit k. */
    const std::vector<unsigned> &permutation() const { return perm_; }

  private:
    unsigned n_cbps_;
    std::vector<unsigned> perm_;
};

} // namespace synchro::dsp

#endif // SYNC_DSP_INTERLEAVER_HH
