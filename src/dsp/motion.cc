#include "dsp/motion.hh"

#include <cstdlib>

namespace synchro::dsp
{

uint32_t
blockSad(const Image &cur, const Image &ref, unsigned x, unsigned y,
         int dx, int dy, unsigned bsize)
{
    uint32_t sad = 0;
    for (unsigned j = 0; j < bsize; ++j) {
        for (unsigned i = 0; i < bsize; ++i) {
            int a = cur.at(int(x + i), int(y + j));
            int b = ref.at(int(x + i) + dx, int(y + j) + dy);
            sad += uint32_t(std::abs(a - b));
        }
    }
    return sad;
}

namespace
{

/** Deterministic tie-break: lower SAD, then smaller |v|1, then
 * raster order of (dy, dx). */
bool
better(const MotionVector &a, const MotionVector &b)
{
    if (a.sad != b.sad)
        return a.sad < b.sad;
    int na = std::abs(a.dx) + std::abs(a.dy);
    int nb = std::abs(b.dx) + std::abs(b.dy);
    if (na != nb)
        return na < nb;
    if (a.dy != b.dy)
        return a.dy < b.dy;
    return a.dx < b.dx;
}

} // namespace

MotionVector
fullSearch(const Image &cur, const Image &ref, unsigned x, unsigned y,
           int range, unsigned bsize)
{
    MotionVector best;
    for (int dy = -range; dy <= range; ++dy) {
        for (int dx = -range; dx <= range; ++dx) {
            MotionVector mv{dx, dy,
                            blockSad(cur, ref, x, y, dx, dy, bsize)};
            if (better(mv, best))
                best = mv;
        }
    }
    return best;
}

MotionVector
threeStepSearch(const Image &cur, const Image &ref, unsigned x,
                unsigned y, unsigned bsize)
{
    MotionVector best{0, 0, blockSad(cur, ref, x, y, 0, 0, bsize)};
    for (int step = 4; step >= 1; step /= 2) {
        MotionVector round_best = best;
        for (int dy = -1; dy <= 1; ++dy) {
            for (int dx = -1; dx <= 1; ++dx) {
                if (dx == 0 && dy == 0)
                    continue;
                int cx = best.dx + dx * step;
                int cy = best.dy + dy * step;
                MotionVector mv{
                    cx, cy, blockSad(cur, ref, x, y, cx, cy, bsize)};
                if (better(mv, round_best))
                    round_best = mv;
            }
        }
        best = round_best;
    }
    return best;
}

} // namespace synchro::dsp
