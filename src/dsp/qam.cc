#include "dsp/qam.hh"

#include <cmath>

#include "common/log.hh"

namespace synchro::dsp
{

unsigned
bitsPerSymbol(Modulation m)
{
    switch (m) {
      case Modulation::BPSK:
        return 1;
      case Modulation::QPSK:
        return 2;
      case Modulation::QAM16:
        return 4;
      case Modulation::QAM64:
        return 6;
    }
    return 0;
}

double
modNorm(Modulation m)
{
    switch (m) {
      case Modulation::BPSK:
        return 1.0;
      case Modulation::QPSK:
        return 1.0 / std::sqrt(2.0);
      case Modulation::QAM16:
        return 1.0 / std::sqrt(10.0);
      case Modulation::QAM64:
        return 1.0 / std::sqrt(42.0);
    }
    return 1.0;
}

namespace
{

/** Gray-mapped PAM level for the standard's bit patterns. */
double
grayPam(unsigned bits, unsigned nbits)
{
    // 802.11a Table 81-84 orderings: 1 bit: 0->-1, 1->+1;
    // 2 bits: 00->-3 01->-1 11->+1 10->+3 etc. (Gray).
    switch (nbits) {
      case 1:
        return bits ? 1.0 : -1.0;
      case 2: {
        static const double lut[4] = {-3, -1, 3, 1};
        return lut[bits];
      }
      case 3: {
        static const double lut[8] = {-7, -5, -1, -3, 7, 5, 1, 3};
        return lut[bits];
      }
    }
    panic("grayPam: unsupported width %u", nbits);
}

unsigned
grayPamInverse(double v, unsigned nbits)
{
    // Hard decision: nearest level wins.
    unsigned best = 0;
    double best_d = 1e300;
    for (unsigned b = 0; b < (1u << nbits); ++b) {
        double d = std::abs(grayPam(b, nbits) - v);
        if (d < best_d) {
            best_d = d;
            best = b;
        }
    }
    return best;
}

} // namespace

std::vector<std::complex<double>>
qamMap(const std::vector<uint8_t> &bits, Modulation m)
{
    unsigned bps = bitsPerSymbol(m);
    if (bits.size() % bps != 0)
        fatal("qamMap: %zu bits not a multiple of %u", bits.size(),
              bps);
    double norm = modNorm(m);
    std::vector<std::complex<double>> out;
    out.reserve(bits.size() / bps);
    for (size_t i = 0; i < bits.size(); i += bps) {
        if (m == Modulation::BPSK) {
            out.emplace_back(grayPam(bits[i], 1), 0.0);
            continue;
        }
        unsigned half = bps / 2;
        unsigned bi = 0, bq = 0;
        for (unsigned k = 0; k < half; ++k) {
            bi = (bi << 1) | bits[i + k];
            bq = (bq << 1) | bits[i + half + k];
        }
        out.emplace_back(grayPam(bi, half) * norm,
                         grayPam(bq, half) * norm);
    }
    return out;
}

std::vector<uint8_t>
qamDemap(const std::vector<std::complex<double>> &symbols,
         Modulation m)
{
    unsigned bps = bitsPerSymbol(m);
    double norm = modNorm(m);
    std::vector<uint8_t> out;
    out.reserve(symbols.size() * bps);
    for (const auto &s : symbols) {
        if (m == Modulation::BPSK) {
            out.push_back(s.real() >= 0 ? 1 : 0);
            continue;
        }
        unsigned half = bps / 2;
        unsigned bi = grayPamInverse(s.real() / norm, half);
        unsigned bq = grayPamInverse(s.imag() / norm, half);
        for (unsigned k = 0; k < half; ++k)
            out.push_back(uint8_t((bi >> (half - 1 - k)) & 1));
        for (unsigned k = 0; k < half; ++k)
            out.push_back(uint8_t((bq >> (half - 1 - k)) & 1));
    }
    return out;
}

std::vector<uint8_t>
qamDemapHardQ15(const std::vector<CplxQ15> &symbols, Modulation m)
{
    std::vector<uint8_t> out;
    out.reserve(symbols.size() * bitsPerSymbol(m));
    for (const auto &s : symbols) {
        switch (m) {
          case Modulation::BPSK:
            out.push_back(s.re >= 0 ? 1 : 0);
            break;
          case Modulation::QPSK:
            // Gray QPSK: each component decides one bit by sign;
            // exactly grayPamInverse() over {-1, +1} (v == 0 -> 0).
            out.push_back(s.re > 0 ? 1 : 0);
            out.push_back(s.im > 0 ? 1 : 0);
            break;
          default:
            fatal("qamDemapHardQ15: only BPSK/QPSK sign slicing is "
                  "implemented");
        }
    }
    return out;
}

} // namespace synchro::dsp
