/**
 * @file
 * K=7 convolutional code: encoder and Viterbi decoder (paper Section
 * 3: "a K=7 Viterbi Decoder" closes the 802.11a receive chain; its
 * Add-Compare-Select stage is the architecture's most demanding
 * communication workload and drives Figure 8's bus-width study).
 *
 * The code is the 802.11a industry-standard rate-1/2 code with
 * generators g0 = 133o, g1 = 171o, 64 states. Decoding splits into
 * the two phases the paper maps to separate columns:
 *  - ACS: per received symbol, update all 64 path metrics,
 *  - Traceback: follow survivor decisions backwards to emit bits.
 */

#ifndef SYNC_DSP_VITERBI_HH
#define SYNC_DSP_VITERBI_HH

#include <cstdint>
#include <vector>

namespace synchro::dsp
{

constexpr unsigned ConvK = 7;              //!< constraint length
constexpr unsigned ConvStates = 64;        //!< 2^(K-1)
constexpr unsigned ConvG0 = 0133;          //!< octal generator
constexpr unsigned ConvG1 = 0171;

/** Rate-1/2 convolutional encoder; flushes K-1 zero tail bits. */
std::vector<uint8_t> convEncode(const std::vector<uint8_t> &bits,
                                bool add_tail = true);

/**
 * The encoder's output pair in state @p state consuming @p bit,
 * packed c0 | c1 << 1. This is the branch-label table the tile ACS
 * kernel preloads: the branch metric against a received pair r is
 * popcount(pair ^ r).
 */
unsigned convCodePair(unsigned state, unsigned bit);

/**
 * Hard-decision Viterbi decoder.
 *
 * @param coded  pairs of code bits (g0 then g1 per input bit)
 * @param tailed true if the encoder appended the K-1 tail (the
 *               decoder then terminates in state 0 and strips it)
 */
std::vector<uint8_t> viterbiDecode(const std::vector<uint8_t> &coded,
                                   bool tailed = true);

/**
 * The ACS inner step exposed for the tile-kernel validation and the
 * bus-traffic model: one trellis stage of path-metric update.
 *
 * @param metrics   64 path metrics in, updated in place
 * @param survivors 64 survivor bits out (predecessor LSB choice)
 * @param r0,r1     the received code bits for this stage
 */
void viterbiAcsStage(std::vector<uint32_t> &metrics,
                     std::vector<uint8_t> &survivors, unsigned r0,
                     unsigned r1);

/**
 * Bus transfers one ACS stage needs when the 64 states are spread
 * over @p tiles tiles: each state's two predecessors (s>>1 and
 * (s>>1)+32) may live on other tiles; returns the count of
 * cross-tile metric words per stage for a block state partition.
 * This is the analytic communication kernel behind Figure 8.
 */
unsigned acsCrossTileWords(unsigned tiles);

} // namespace synchro::dsp

#endif // SYNC_DSP_VITERBI_HH
