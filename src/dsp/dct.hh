/**
 * @file
 * 8x8 DCT-II / IDCT and MPEG-4 style quantization (paper Section 3:
 * "we implement Motion Estimation, DCT and Quantization which
 * constitute about 90% of the video encoder").
 *
 * The fixed-point path mirrors what the tiles execute: separable
 * row/column passes with Q13 cosine coefficients and 40-bit
 * accumulation.
 */

#ifndef SYNC_DSP_DCT_HH
#define SYNC_DSP_DCT_HH

#include <array>
#include <cstdint>

namespace synchro::dsp
{

using Block8x8 = std::array<int16_t, 64>;
using Block8x8d = std::array<double, 64>;

/** Reference double-precision 8x8 DCT-II (orthonormal). */
Block8x8d dct8x8Ref(const Block8x8 &in);

/** Reference inverse. */
Block8x8 idct8x8Ref(const Block8x8d &coef);

/** Fixed-point forward DCT (Q13 coefficients, rounded). */
Block8x8 dct8x8(const Block8x8 &in);

/** Fixed-point inverse DCT. */
Block8x8 idct8x8(const Block8x8 &coef);

/** MPEG-4 "H.263 style" uniform quantizer: coef / (2*qp). */
Block8x8 quantize(const Block8x8 &coef, int qp);

/** Inverse quantizer: qp*(2*level + sign) reconstruction. */
Block8x8 dequantize(const Block8x8 &levels, int qp);

/** Zigzag scan order (index = scan position, value = block index). */
const std::array<uint8_t, 64> &zigzagOrder();

/** Scan a block into zigzag order. */
Block8x8 zigzag(const Block8x8 &in);

/** Inverse zigzag. */
Block8x8 unzigzag(const Block8x8 &in);

} // namespace synchro::dsp

#endif // SYNC_DSP_DCT_HH
