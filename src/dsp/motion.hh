/**
 * @file
 * MPEG-4 motion estimation (paper Section 3). Block-based SAD search
 * over a reference frame: exhaustive full search (the quality
 * baseline) and three-step search (the fast variant); both return
 * the motion vector minimizing the sum of absolute differences,
 * which is exactly what the tile's 4-byte SAA instruction
 * accelerates.
 */

#ifndef SYNC_DSP_MOTION_HH
#define SYNC_DSP_MOTION_HH

#include <cstdint>

#include "dsp/image.hh"

namespace synchro::dsp
{

struct MotionVector
{
    int dx = 0;
    int dy = 0;
    uint32_t sad = UINT32_MAX;

    friend bool
    operator==(const MotionVector &a, const MotionVector &b)
    {
        return a.dx == b.dx && a.dy == b.dy;
    }
};

/** SAD of a bsize x bsize block at (x,y) in cur vs (x+dx, y+dy) in
 * ref (edge-clamped). */
uint32_t blockSad(const Image &cur, const Image &ref, unsigned x,
                  unsigned y, int dx, int dy, unsigned bsize = 16);

/** Exhaustive search in [-range, range]^2 (ties: smaller |v|, then
 * raster order — deterministic). */
MotionVector fullSearch(const Image &cur, const Image &ref,
                        unsigned x, unsigned y, int range = 7,
                        unsigned bsize = 16);

/** Three-step search with initial step 4 (for range ~7). */
MotionVector threeStepSearch(const Image &cur, const Image &ref,
                             unsigned x, unsigned y,
                             unsigned bsize = 16);

} // namespace synchro::dsp

#endif // SYNC_DSP_MOTION_HH
