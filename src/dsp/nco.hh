/**
 * @file
 * Numerically Controlled Oscillator — the first stage of the Digital
 * Down Converter (paper Section 3: "a Numerically Controlled
 * Oscillator, digital mixer, Cascaded-Integrator-Comb filter and a
 * two-stage filter").
 *
 * A 32-bit phase accumulator indexes a quarter-wave-symmetric Q15
 * sine table, producing the complex local-oscillator samples
 * (cos, -sin) that the mixer multiplies with the RF input to shift
 * the signal of interest to baseband.
 */

#ifndef SYNC_DSP_NCO_HH
#define SYNC_DSP_NCO_HH

#include <cstdint>
#include <vector>

#include "common/fixed.hh"

namespace synchro::dsp
{

class Nco
{
  public:
    static constexpr unsigned TableBits = 10; //!< 1024-entry sine LUT

    /**
     * @param freq_hz   oscillator frequency
     * @param sample_hz sample rate (> 2 * freq_hz)
     */
    Nco(double freq_hz, double sample_hz);

    /** Next local-oscillator sample: (cos(phi), -sin(phi)). */
    CplxQ15 next();

    /** Produce @p n consecutive samples. */
    std::vector<CplxQ15> generate(size_t n);

    /** Phase increment per sample in accumulator units. */
    uint32_t phaseStep() const { return step_; }

    void reset() { phase_ = 0; }

    /** Shared quarter-wave sine table (Q15, full wave expanded). */
    static const std::vector<int16_t> &sineTable();

  private:
    uint32_t phase_ = 0;
    uint32_t step_;
};

} // namespace synchro::dsp

#endif // SYNC_DSP_NCO_HH
