/**
 * @file
 * Cascaded-Integrator-Comb decimation filter (paper Section 3): the
 * multiplierless rate-change stage between the DDC mixer and the
 * compensating FIRs. N integrator stages run at the input rate, the
 * decimator drops to 1/R, and N comb stages (differential delay M)
 * run at the output rate — which is why the paper maps the
 * integrator and comb onto separate columns at different clocks.
 */

#ifndef SYNC_DSP_CIC_HH
#define SYNC_DSP_CIC_HH

#include <cstdint>
#include <vector>

#include "common/fixed.hh"

namespace synchro::dsp
{

/** N cascaded integrators: y += x per stage, wrapping int32. */
class CicIntegrator
{
  public:
    explicit CicIntegrator(unsigned stages);

    int32_t step(int32_t x);
    std::vector<int32_t> process(const std::vector<int32_t> &x);
    void reset();

    unsigned stages() const { return unsigned(state_.size()); }

  private:
    std::vector<int32_t> state_;
};

/** N cascaded combs at the decimated rate: y = x - x[z^-M]. */
class CicComb
{
  public:
    CicComb(unsigned stages, unsigned delay = 1);

    int32_t step(int32_t x);
    std::vector<int32_t> process(const std::vector<int32_t> &x);
    void reset();

  private:
    unsigned delay_;
    std::vector<std::vector<int32_t>> history_; //!< per stage, M deep
    std::vector<unsigned> pos_;
};

/**
 * Hogenauer-style gain removal at the decimator: sat16((v + 2^14)
 * >> 15) with a wrapping add, exactly the tile's addi/asri/min/max
 * sequence — removes the 2^15 DC gain of a 5-stage, decimate-by-8
 * CIC so the comb can run at 16-bit width (the mapped pipeline's
 * bus token format).
 */
constexpr int16_t
cicScaleQ15(int32_t v)
{
    int32_t t = int32_t(uint32_t(v) + 16384u);
    return sat16(t >> 15);
}

/** The full decimating CIC: integrators -> ÷R -> combs -> scaling. */
class CicDecimator
{
  public:
    /**
     * @param stages   N (the paper's GSM DDC uses a 5-stage CIC)
     * @param decim    R, the rate change
     * @param delay    M, the comb differential delay
     */
    CicDecimator(unsigned stages, unsigned decim, unsigned delay = 1);

    /** Process a block; emits floor(n/R) output samples. */
    std::vector<int32_t> process(const std::vector<int32_t> &x);

    /** DC gain (R*M)^N — callers rescale by this. */
    double gain() const;

    void reset();

    unsigned decimation() const { return decim_; }

  private:
    CicIntegrator integ_;
    CicComb comb_;
    unsigned decim_;
    unsigned stages_;
    unsigned delay_;
    unsigned phase_ = 0;
};

} // namespace synchro::dsp

#endif // SYNC_DSP_CIC_HH
