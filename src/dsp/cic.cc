#include "dsp/cic.hh"

#include <cmath>

#include "common/log.hh"

namespace synchro::dsp
{

CicIntegrator::CicIntegrator(unsigned stages) : state_(stages, 0)
{
    if (stages == 0)
        fatal("CicIntegrator: need at least one stage");
}

int32_t
CicIntegrator::step(int32_t x)
{
    // Two's-complement wraparound is intentional and by design in CIC
    // filters: the combs cancel the modular overflow exactly as long
    // as the register width covers the filter's DC gain.
    int32_t acc = x;
    for (auto &s : state_) {
        s = int32_t(uint32_t(s) + uint32_t(acc));
        acc = s;
    }
    return acc;
}

std::vector<int32_t>
CicIntegrator::process(const std::vector<int32_t> &x)
{
    std::vector<int32_t> out(x.size());
    for (size_t i = 0; i < x.size(); ++i)
        out[i] = step(x[i]);
    return out;
}

void
CicIntegrator::reset()
{
    std::fill(state_.begin(), state_.end(), 0);
}

CicComb::CicComb(unsigned stages, unsigned delay)
    : delay_(delay), history_(stages), pos_(stages, 0)
{
    if (stages == 0 || delay == 0)
        fatal("CicComb: stages and delay must be positive");
    for (auto &h : history_)
        h.assign(delay, 0);
}

int32_t
CicComb::step(int32_t x)
{
    int32_t v = x;
    for (size_t s = 0; s < history_.size(); ++s) {
        int32_t delayed = history_[s][pos_[s]];
        history_[s][pos_[s]] = v;
        pos_[s] = (pos_[s] + 1) % delay_;
        v = int32_t(uint32_t(v) - uint32_t(delayed));
    }
    return v;
}

std::vector<int32_t>
CicComb::process(const std::vector<int32_t> &x)
{
    std::vector<int32_t> out(x.size());
    for (size_t i = 0; i < x.size(); ++i)
        out[i] = step(x[i]);
    return out;
}

void
CicComb::reset()
{
    for (auto &h : history_)
        std::fill(h.begin(), h.end(), 0);
    std::fill(pos_.begin(), pos_.end(), 0);
}

CicDecimator::CicDecimator(unsigned stages, unsigned decim,
                           unsigned delay)
    : integ_(stages), comb_(stages, delay), decim_(decim),
      stages_(stages), delay_(delay)
{
    if (decim == 0)
        fatal("CicDecimator: decimation must be positive");
    double bits = stages * std::log2(double(decim) * delay);
    if (bits > 24)
        fatal("CicDecimator: (R*M)^N needs %.0f bits of growth; "
              "32-bit registers would overflow the 8-bit input "
              "headroom",
              bits);
}

std::vector<int32_t>
CicDecimator::process(const std::vector<int32_t> &x)
{
    std::vector<int32_t> out;
    out.reserve(x.size() / decim_ + 1);
    for (int32_t v : x) {
        int32_t acc = integ_.step(v);
        if (++phase_ == decim_) {
            phase_ = 0;
            out.push_back(comb_.step(acc));
        }
    }
    return out;
}

double
CicDecimator::gain() const
{
    return std::pow(double(decim_) * delay_, double(stages_));
}

void
CicDecimator::reset()
{
    integ_.reset();
    comb_.reset();
    phase_ = 0;
}

} // namespace synchro::dsp
