/**
 * @file
 * A minimal 8-bit monochrome image container shared by the motion
 * estimation (MPEG-4) and stereo vision (Tomasi-Kanade) kernels.
 */

#ifndef SYNC_DSP_IMAGE_HH
#define SYNC_DSP_IMAGE_HH

#include <cstdint>
#include <vector>

#include "common/log.hh"

namespace synchro::dsp
{

class Image
{
  public:
    Image(unsigned width, unsigned height, uint8_t fill = 0)
        : w_(width), h_(height), pix_(size_t(width) * height, fill)
    {
        if (width == 0 || height == 0)
            fatal("Image: zero dimension");
    }

    unsigned width() const { return w_; }
    unsigned height() const { return h_; }

    uint8_t
    at(int x, int y) const
    {
        return pix_[size_t(clampY(y)) * w_ + clampX(x)];
    }

    uint8_t &
    operator()(unsigned x, unsigned y)
    {
        sync_assert(x < w_ && y < h_, "pixel (%u,%u) out of bounds",
                    x, y);
        return pix_[size_t(y) * w_ + x];
    }

    uint8_t
    operator()(unsigned x, unsigned y) const
    {
        sync_assert(x < w_ && y < h_, "pixel (%u,%u) out of bounds",
                    x, y);
        return pix_[size_t(y) * w_ + x];
    }

    const std::vector<uint8_t> &pixels() const { return pix_; }
    std::vector<uint8_t> &pixels() { return pix_; }

  private:
    int
    clampX(int x) const
    {
        return x < 0 ? 0 : (x >= int(w_) ? int(w_) - 1 : x);
    }
    int
    clampY(int y) const
    {
        return y < 0 ? 0 : (y >= int(h_) ? int(h_) - 1 : y);
    }

    unsigned w_, h_;
    std::vector<uint8_t> pix_;
};

} // namespace synchro::dsp

#endif // SYNC_DSP_IMAGE_HH
