#include "dsp/interleaver.hh"

#include <algorithm>

#include "common/log.hh"

namespace synchro::dsp
{

Interleaver::Interleaver(Modulation m, unsigned data_carriers)
{
    unsigned n_bpsc = bitsPerSymbol(m);
    n_cbps_ = n_bpsc * data_carriers;
    unsigned s = std::max(n_bpsc / 2, 1u);

    perm_.resize(n_cbps_);
    for (unsigned k = 0; k < n_cbps_; ++k) {
        // 802.11a 17.3.5.6: first permutation (rows of 16):
        unsigned i = (n_cbps_ / 16) * (k % 16) + k / 16;
        // second permutation (rotation within groups of s):
        unsigned j = s * (i / s) +
                     (i + n_cbps_ - (16 * i) / n_cbps_) % s;
        perm_[k] = j;
    }
}

std::vector<uint8_t>
Interleaver::interleave(const std::vector<uint8_t> &bits) const
{
    if (bits.size() != n_cbps_)
        fatal("interleave: block must be %u bits, got %zu", n_cbps_,
              bits.size());
    std::vector<uint8_t> out(n_cbps_);
    for (unsigned k = 0; k < n_cbps_; ++k)
        out[perm_[k]] = bits[k];
    return out;
}

std::vector<uint8_t>
Interleaver::deinterleave(const std::vector<uint8_t> &bits) const
{
    if (bits.size() != n_cbps_)
        fatal("deinterleave: block must be %u bits, got %zu", n_cbps_,
              bits.size());
    std::vector<uint8_t> out(n_cbps_);
    for (unsigned k = 0; k < n_cbps_; ++k)
        out[k] = bits[perm_[k]];
    return out;
}

} // namespace synchro::dsp
