/**
 * @file
 * 802.11a constellation mapping and demapping (paper Section 3:
 * "Demodulation" in the receiver chain). Gray-coded BPSK, QPSK,
 * 16-QAM and 64-QAM with the standard's normalization factors.
 */

#ifndef SYNC_DSP_QAM_HH
#define SYNC_DSP_QAM_HH

#include <complex>
#include <cstdint>
#include <vector>

#include "common/fixed.hh"

namespace synchro::dsp
{

enum class Modulation
{
    BPSK,  //!< 1 bit/subcarrier (6/9 Mbps rates)
    QPSK,  //!< 2 bits (12/18 Mbps)
    QAM16, //!< 4 bits (24/36 Mbps)
    QAM64, //!< 6 bits (48/54 Mbps)
};

/** Bits per subcarrier for a modulation. */
unsigned bitsPerSymbol(Modulation m);

/** Normalization factor K_mod from the 802.11a standard. */
double modNorm(Modulation m);

/** Map bits (LSB-first groups) to constellation points. */
std::vector<std::complex<double>> qamMap(
    const std::vector<uint8_t> &bits, Modulation m);

/** Hard-decision demap back to bits. */
std::vector<uint8_t> qamDemap(
    const std::vector<std::complex<double>> &symbols, Modulation m);

/**
 * Hard-decision demap of Q15-quantized symbols in pure integer
 * arithmetic — exactly what the mapped demap tile kernel computes,
 * so the golden chain and the chip agree bit for bit. BPSK and QPSK
 * only (sign decisions; denser constellations need amplitude
 * slicing). Agrees with qamDemap() of the unquantized symbols
 * whenever quantization does not move a component across zero.
 */
std::vector<uint8_t> qamDemapHardQ15(
    const std::vector<CplxQ15> &symbols, Modulation m);

} // namespace synchro::dsp

#endif // SYNC_DSP_QAM_HH
