/**
 * @file
 * AES-128 block cipher and CBC-MAC (paper Section 5.1: "we have
 * composed an AES-based message authentication code with the 802.11a
 * receiver" — the 16-tile, 110 MHz, 0.8 V column of Table 4).
 *
 * Straightforward table-free implementation (S-box lookup, xtime
 * MixColumns) — correctness validated against FIPS-197 vectors.
 */

#ifndef SYNC_DSP_AES_HH
#define SYNC_DSP_AES_HH

#include <array>
#include <cstdint>
#include <vector>

namespace synchro::dsp
{

using AesBlock = std::array<uint8_t, 16>;
using AesKey = std::array<uint8_t, 16>;

class Aes128
{
  public:
    explicit Aes128(const AesKey &key);

    /** Encrypt one 16-byte block. */
    AesBlock encrypt(const AesBlock &plain) const;

    /** Decrypt one 16-byte block. */
    AesBlock decrypt(const AesBlock &cipher) const;

    /**
     * CBC-MAC over a byte stream (zero IV, zero-padded final block).
     * Fixed-length-message use only, as in the paper's composed
     * receiver experiment.
     */
    AesBlock cbcMac(const std::vector<uint8_t> &message) const;

  private:
    std::array<AesBlock, 11> round_keys_;
};

} // namespace synchro::dsp

#endif // SYNC_DSP_AES_HH
