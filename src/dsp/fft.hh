/**
 * @file
 * Radix-2 decimation-in-time FFT (paper Section 3: the 64-point FFT
 * is the first major component of the 802.11a OFDM receiver).
 *
 * Two variants:
 *  - a double-precision reference used for spectrum checks, and
 *  - a block-floating Q15 fixed-point FFT with per-stage scaling (the
 *    form a Blackfin-class tile would execute), validated against the
 *    reference in tests.
 */

#ifndef SYNC_DSP_FFT_HH
#define SYNC_DSP_FFT_HH

#include <complex>
#include <vector>

#include "common/fixed.hh"

namespace synchro::dsp
{

using Cplx = std::complex<double>;

/** In-place double-precision FFT; n must be a power of two. */
void fft(std::vector<Cplx> &x);

/** Inverse FFT (1/n normalized). */
void ifft(std::vector<Cplx> &x);

/**
 * Fixed-point Q15 FFT with unconditional per-stage >>1 scaling, so
 * the output equals FFT(x)/n in Q15 (no overflow for any input).
 */
void fftQ15(std::vector<CplxQ15> &x);

/** Inverse fixed-point FFT; output equals IFFT without the 1/n (the
 * forward pass already divided by n). */
void ifftQ15(std::vector<CplxQ15> &x);

/** Bit-reversal permutation used by both variants. */
unsigned bitReverse(unsigned v, unsigned bits);

} // namespace synchro::dsp

#endif // SYNC_DSP_FFT_HH
