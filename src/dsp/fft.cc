#include "dsp/fft.hh"

#include <cmath>

#include "common/bitfield.hh"
#include "common/log.hh"

namespace synchro::dsp
{

unsigned
bitReverse(unsigned v, unsigned bits)
{
    unsigned r = 0;
    for (unsigned i = 0; i < bits; ++i) {
        r = (r << 1) | (v & 1);
        v >>= 1;
    }
    return r;
}

namespace
{

unsigned
log2Exact(size_t n, const char *who)
{
    if (n == 0 || !isPowerOf2(n))
        fatal("%s: size %zu is not a power of two", who, n);
    unsigned bits = 0;
    while ((size_t(1) << bits) < n)
        ++bits;
    return bits;
}

void
fftCore(std::vector<Cplx> &x, bool inverse)
{
    const size_t n = x.size();
    unsigned bits = log2Exact(n, "fft");

    for (unsigned i = 0; i < n; ++i) {
        unsigned j = bitReverse(i, bits);
        if (j > i)
            std::swap(x[i], x[j]);
    }

    for (size_t len = 2; len <= n; len <<= 1) {
        double ang = (inverse ? 2.0 : -2.0) * M_PI / double(len);
        Cplx wl(std::cos(ang), std::sin(ang));
        for (size_t i = 0; i < n; i += len) {
            Cplx w(1.0, 0.0);
            for (size_t j = 0; j < len / 2; ++j) {
                Cplx u = x[i + j];
                Cplx v = x[i + j + len / 2] * w;
                x[i + j] = u + v;
                x[i + j + len / 2] = u - v;
                w *= wl;
            }
        }
    }
}

/** Q15 twiddle factors for a given FFT length (cached per length). */
const std::vector<CplxQ15> &
twiddlesQ15(size_t n, bool inverse)
{
    static std::vector<CplxQ15> cache[2][33];
    unsigned bits = log2Exact(n, "fftQ15");
    auto &slot = cache[inverse ? 1 : 0][bits];
    if (slot.empty()) {
        slot.resize(n / 2);
        for (size_t k = 0; k < n / 2; ++k) {
            double ang = (inverse ? 2.0 : -2.0) * M_PI * double(k) /
                         double(n);
            slot[k] = {toQ15(std::cos(ang) * 0.999969),
                       toQ15(std::sin(ang) * 0.999969)};
        }
    }
    return slot;
}

void
fftQ15Core(std::vector<CplxQ15> &x, bool inverse)
{
    const size_t n = x.size();
    unsigned bits = log2Exact(n, "fftQ15");
    const auto &tw = twiddlesQ15(n, inverse);

    for (unsigned i = 0; i < n; ++i) {
        unsigned j = bitReverse(i, bits);
        if (j > i)
            std::swap(x[i], x[j]);
    }

    for (size_t len = 2; len <= n; len <<= 1) {
        size_t tw_step = n / len;
        for (size_t i = 0; i < n; i += len) {
            for (size_t j = 0; j < len / 2; ++j) {
                CplxQ15 u = x[i + j];
                CplxQ15 v =
                    mulCplxQ15(x[i + j + len / 2], tw[j * tw_step]);
                // Per-stage >>1 guarantees |output| <= |input| at
                // every stage (block-floating with fixed exponent n).
                x[i + j] = {int16_t((int32_t(u.re) + v.re) >> 1),
                            int16_t((int32_t(u.im) + v.im) >> 1)};
                x[i + j + len / 2] = {
                    int16_t((int32_t(u.re) - v.re) >> 1),
                    int16_t((int32_t(u.im) - v.im) >> 1)};
            }
        }
    }
}

} // namespace

void
fft(std::vector<Cplx> &x)
{
    fftCore(x, false);
}

void
ifft(std::vector<Cplx> &x)
{
    fftCore(x, true);
    for (auto &v : x)
        v /= double(x.size());
}

void
fftQ15(std::vector<CplxQ15> &x)
{
    fftQ15Core(x, false);
}

void
ifftQ15(std::vector<CplxQ15> &x)
{
    fftQ15Core(x, true);
}

} // namespace synchro::dsp
