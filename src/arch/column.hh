/**
 * @file
 * A Synchroscalar column: four tiles, one SIMD controller, one DOU,
 * one clock divider, one supply voltage (paper Figure 1). The column
 * is the unit of frequency/voltage assignment — "each column of four
 * tiles is supported by a specific clock generator and voltage and
 * are configured at startup".
 */

#ifndef SYNC_ARCH_COLUMN_HH
#define SYNC_ARCH_COLUMN_HH

#include <memory>
#include <vector>

#include "arch/dou.hh"
#include "arch/simd_controller.hh"
#include "arch/tile.hh"
#include "sim/clock.hh"

namespace synchro::arch
{

class Column
{
  public:
    /**
     * @param id       column index on the chip
     * @param n_tiles  populated tile positions (1..4)
     * @param clock    this column's divided clock domain
     */
    Column(unsigned id, unsigned n_tiles, ClockDomain clock);

    unsigned id() const { return id_; }
    unsigned numTiles() const { return unsigned(tiles_.size()); }

    Tile &tile(unsigned i) { return *tiles_.at(i); }
    const Tile &tile(unsigned i) const { return *tiles_.at(i); }

    SimdController &controller() { return ctrl_; }
    const SimdController &controller() const { return ctrl_; }
    Dou &dou() { return dou_; }
    const Dou &dou() const { return dou_; }

    const ClockDomain &clock() const { return clock_; }

    /**
     * Replace this column's clock divider (same reference, same
     * phase) — the DVFS governor's per-column retune primitive.
     * Callers must hold the chip at a statically-safe
     * reconfiguration point (arch::Chip::retune() enforces this);
     * the domain's future edges derive from the new divider the
     * next time a scheduler arms them.
     */
    void
    retuneClock(unsigned divider)
    {
        clock_ =
            ClockDomain(clock_.refFreqHz(), divider, clock_.phase());
    }

    /**
     * Enable/disable a tile at startup. Disabled (idle) tiles are
     * supply-gated: they execute nothing and contribute no power
     * (paper Sections 2.2 and 4.4).
     */
    void setTileActive(unsigned i, bool active);
    bool tileActive(unsigned i) const { return active_.at(i); }

    /** The active tiles, in position order. */
    const std::vector<Tile *> &
    activeTiles() const
    {
        return active_tiles_;
    }

    /** One column clock edge: the controller issues one slot. */
    void clockEdge();

    /**
     * Up to @p max_slots consecutive issue slots executed as one
     * compiled block (SimdController::cycleBlock). Returns the slots
     * consumed; 0 means the caller must fall back to clockEdge().
     */
    Tick clockEdgeBlock(Tick max_slots);

    /**
     * Up to @p max_slots comm-stall slots consumed in one call
     * (SimdController::stallBlock); only valid across edges the
     * caller knows are bus-quiet. 0 = not comm-stalled.
     */
    Tick stallBlock(Tick max_slots);

    /** Pointers for the bus fabric, by position (nullptr if absent). */
    std::vector<Tile *> busTiles();

    bool halted() const { return ctrl_.halted(); }

    /** Column clock edges seen so far (issue slots). */
    uint64_t cyclesSeen() const { return cycles_seen_; }

    void reset();

    /**
     * Snapshot @p other's programmed state into this column:
     * controller, DOU, every tile (including SRAM) and the tile
     * supply-gating flags. Statistics are NOT copied. The columns
     * must have the same tile population; Chip::clone() drives this.
     */
    void copyStateFrom(const Column &other);

  private:
    void rebuildActive();

    unsigned id_;
    ClockDomain clock_;
    std::vector<std::unique_ptr<Tile>> tiles_;
    std::vector<bool> active_;
    std::vector<Tile *> active_tiles_;
    SimdController ctrl_;
    Dou dou_;
    uint64_t cycles_seen_ = 0;
};

} // namespace synchro::arch

#endif // SYNC_ARCH_COLUMN_HH
