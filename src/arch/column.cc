#include "arch/column.hh"

#include "common/log.hh"

namespace synchro::arch
{

Column::Column(unsigned id, unsigned n_tiles, ClockDomain clock)
    : id_(id), clock_(clock), ctrl_(id), dou_(id)
{
    if (n_tiles == 0 || n_tiles > TilesPerColumn)
        fatal("column %u: %u tiles requested; hardware has 1..%u", id,
              n_tiles, TilesPerColumn);
    for (unsigned i = 0; i < n_tiles; ++i)
        tiles_.push_back(std::make_unique<Tile>(id, i));
    active_.assign(n_tiles, true);
    rebuildActive();
}

void
Column::setTileActive(unsigned i, bool active)
{
    active_.at(i) = active;
    rebuildActive();
}

void
Column::rebuildActive()
{
    active_tiles_.clear();
    for (unsigned i = 0; i < tiles_.size(); ++i) {
        if (active_[i])
            active_tiles_.push_back(tiles_[i].get());
    }
}

void
Column::clockEdge()
{
    ++cycles_seen_;
    ctrl_.cycle(active_tiles_);
}

Tick
Column::clockEdgeBlock(Tick max_slots)
{
    Tick k = ctrl_.cycleBlock(active_tiles_, max_slots);
    cycles_seen_ += k;
    return k;
}

Tick
Column::stallBlock(Tick max_slots)
{
    Tick k = ctrl_.stallBlock(active_tiles_, max_slots);
    cycles_seen_ += k;
    return k;
}

std::vector<Tile *>
Column::busTiles()
{
    std::vector<Tile *> out(TilesPerColumn, nullptr);
    for (unsigned i = 0; i < tiles_.size(); ++i) {
        if (active_[i])
            out[i] = tiles_[i].get();
    }
    return out;
}

void
Column::copyStateFrom(const Column &other)
{
    sync_assert(tiles_.size() == other.tiles_.size(),
                "column %u: copyStateFrom across tile populations "
                "(%zu vs %zu)",
                id_, tiles_.size(), other.tiles_.size());
    ctrl_.copyStateFrom(other.ctrl_);
    dou_.copyStateFrom(other.dou_);
    for (unsigned i = 0; i < tiles_.size(); ++i)
        tiles_[i]->copyStateFrom(*other.tiles_[i]);
    active_ = other.active_;
    rebuildActive();
    cycles_seen_ = other.cycles_seen_;
}

void
Column::reset()
{
    ctrl_.reset();
    dou_.reset();
    cycles_seen_ = 0;
    for (auto &t : tiles_)
        t->resetState();
}

} // namespace synchro::arch
