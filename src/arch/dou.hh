/**
 * @file
 * Data Orchestration Unit — the decoupled, statically-scheduled
 * communication controller of each column (paper Section 2.3,
 * Figure 3).
 *
 * The DOU is a state machine of up to 128 states driven at the bus
 * (maximum) frequency. Each state word packs five field types:
 *
 *   CNTR  (2 b)  which of the four 32-bit down-counters to test
 *   SEG   (4x4 b) segment-switch controls for the column bus
 *   Buffer(4x8 b) per-tile drive/capture controls
 *   NXTSTATE0 (7 b) successor when the tested counter is zero
 *                   (the counter also reloads its initial value)
 *   NXTSTATE1 (7 b) successor otherwise (the counter decrements)
 *
 * = 64 bits per state, exactly the layout of the paper's Figure 3.
 * The four pre-programmed down-counters give four nested loops.
 *
 * Buffer byte layout (our encoding of the paper's 8 bits/tile):
 *   bit 7    drive enable  (write buffer -> bus lane)
 *   bits 6:4 drive lane    (which of the 8 32-bit splits)
 *   bit 3    capture enable(bus lane -> read buffer)
 *   bits 2:0 capture lane
 */

#ifndef SYNC_ARCH_DOU_HH
#define SYNC_ARCH_DOU_HH

#include <array>
#include <cstdint>
#include <vector>

#include "common/stats.hh"

namespace synchro::arch
{

constexpr unsigned DouMaxStates = 128;
constexpr unsigned DouNumCounters = 4;
constexpr unsigned TilesPerColumn = 4;
constexpr unsigned BusLanes = 8;          //!< 8 x 32-bit = 256 bits
constexpr unsigned SegPointsPerColumn = 4; //!< 3 inter-tile + boundary

/** Per-tile buffer-control helpers. */
struct BufferCtl
{
    bool drive = false;
    uint8_t drive_lane = 0;
    bool capture = false;
    uint8_t capture_lane = 0;

    uint8_t
    byte() const
    {
        return uint8_t((drive ? 0x80 : 0) | ((drive_lane & 7) << 4) |
                       (capture ? 0x08 : 0) | (capture_lane & 7));
    }

    static BufferCtl
    fromByte(uint8_t b)
    {
        BufferCtl c;
        c.drive = (b & 0x80) != 0;
        c.drive_lane = (b >> 4) & 7;
        c.capture = (b & 0x08) != 0;
        c.capture_lane = b & 7;
        return c;
    }
};

/** One DOU state. */
struct DouState
{
    uint8_t cntr = 0;                              //!< 2 bits
    std::array<uint8_t, SegPointsPerColumn> seg{}; //!< 4 bits each
    std::array<uint8_t, TilesPerColumn> buf{};     //!< 8 bits each
    uint8_t nxt0 = 0;                              //!< 7 bits
    uint8_t nxt1 = 0;                              //!< 7 bits

    /** Pack into the 64-bit state word of Figure 3. */
    uint64_t pack() const;
    static DouState unpack(uint64_t word);

    friend bool
    operator==(const DouState &a, const DouState &b)
    {
        return a.pack() == b.pack();
    }
};

/** A complete DOU configuration: states plus counter initial values. */
struct DouProgram
{
    std::vector<DouState> states;
    std::array<uint32_t, DouNumCounters> counter_init{};

    /** A single self-looping all-idle state. */
    static DouProgram idle();

    /** fatal() if the program violates hardware limits. */
    void validate() const;
};

/**
 * The DOU state machine. Call step() once per bus cycle; the returned
 * state's SEG/Buffer outputs configure the column bus for that cycle.
 */
class Dou
{
  public:
    explicit Dou(unsigned column);

    void load(const DouProgram &prog);

    /**
     * Outputs for this cycle, then advance. Defined inline: the
     * reference phase calls this once per column per active tick.
     */
    const DouState &
    step()
    {
        // A cached comm-free run covers this step: walkCommFree()
        // mirrors step()'s transition rule exactly, so one real step
        // consumes one slot of the proven run. Past the run's end
        // nothing is known.
        if (cf_run_ > 0) {
            --cf_run_;
            --cf_cap_;
        } else {
            cf_cap_ = 0;
        }
        ++steps_;
        const DouState &out = prog_.states[state_];
        uint32_t &ctr = counters_[out.cntr];
        if (ctr == 0) {
            ctr = prog_.counter_init[out.cntr];
            state_ = out.nxt0;
        } else {
            --ctr;
            state_ = out.nxt1;
        }
        return out;
    }

    /** Outputs for this cycle without advancing. */
    const DouState &current() const { return prog_.states[state_]; }

    /**
     * True if the current state is an inert self-loop: both successors
     * point back at it and no tile drives or captures, so step() can
     * only cycle the tested counter. This is the state an idle DOU (or
     * a finished schedule's parking state) sits in.
     */
    bool inertSelfLoop() const;

    /**
     * Fast-forward @p n cycles through the current inert self-loop in
     * O(1): the tested counter is advanced modulo its reload period
     * and the step statistic is credited, exactly as n step() calls
     * would have. panic() if the current state is not an inert
     * self-loop.
     */
    void skipSteps(uint64_t n);

    /**
     * How many of the next @p max step() calls are *comm-free*: every
     * state visited (including the current one) has all-zero buffer
     * controls, so no tile drives or captures and a bus cycle against
     * it is a guaranteed no-op. Unlike inertSelfLoop() this walks
     * through state transitions — wait states (nxt1 == self) and
     * inert self-loops are consumed in O(1), other comm-free states
     * one at a time — so a schedule that parks between its active
     * slots reports the whole gap.
     */
    uint64_t commFreeRun(uint64_t max) const;

    /**
     * Commit @p n comm-free cycles in one call: state and counters
     * advance exactly as n step() calls would, and the step statistic
     * is credited. @p n must not exceed commFreeRun(n) — the walk
     * panics if it reaches a driving/capturing state early.
     */
    void fastForwardCommFree(uint64_t n);

    unsigned stateIndex() const { return state_; }
    uint32_t counter(unsigned i) const { return counters_.at(i); }

    void reset();

    /**
     * Snapshot @p other's program and machine position (state index,
     * counters) into this DOU; the comm-free lookahead cache is
     * dropped (it is re-proven on demand) and statistics are NOT
     * copied. Chip::clone() drives this.
     */
    void copyStateFrom(const Dou &other);

    StatGroup &stats() { return stats_; }
    const StatGroup &stats() const { return stats_; }

  private:
    uint64_t walkCommFree(uint64_t max, unsigned &st,
                          std::array<uint32_t, DouNumCounters> &ctrs)
        const;

    unsigned column_;
    DouProgram prog_;
    unsigned state_ = 0;
    std::array<uint32_t, DouNumCounters> counters_{};
    StatGroup stats_;
    Counter &steps_;

    /**
     * Comm-free lookahead cache: the next cf_run_ step() calls are
     * proven comm-free against horizon cf_cap_ (cf_run_ < cf_cap_
     * means the run's end is exact, not horizon-capped). Repeated
     * probes over one quiet window — the Compiled scheduler asks
     * once to bound stalls and again to batch phases — then hit the
     * cache instead of re-walking. Any other state change resets it.
     *
     * cf_end_* is the machine position after consuming the whole
     * cached run. Whenever cf_run_ > 0 it is current: only a probe
     * walk raises cf_run_ (and records the end), and every consuming
     * path shortens the run from the front, which leaves the position
     * after the remainder unchanged. fastForwardCommFree() snaps to
     * it when asked to commit exactly the remaining run.
     */
    mutable uint64_t cf_run_ = 0;
    mutable uint64_t cf_cap_ = 0;
    mutable unsigned cf_end_state_ = 0;
    mutable std::array<uint32_t, DouNumCounters> cf_end_ctrs_{};
};

} // namespace synchro::arch

#endif // SYNC_ARCH_DOU_HH
