/**
 * @file
 * One Synchroscalar processor tile.
 *
 * The tile is a simple single-issue Blackfin-style datapath: R0-R7,
 * P0-P5, two 40-bit accumulators, a CC flag, and 32 KB of local data
 * SRAM. It has no fetch/decode of its own — the column's SIMD
 * controller broadcasts decoded instructions (paper Section 2.2) and
 * the tile merely executes them against private state. R7 is the
 * designated communication register; `cwr`/`crd` move data through the
 * write/read buffers that the DOU services at bus cycles.
 */

#ifndef SYNC_ARCH_TILE_HH
#define SYNC_ARCH_TILE_HH

#include <array>
#include <cstdint>
#include <cstring>
#include <vector>

#include "arch/comm_buffer.hh"
#include "arch/dou.hh"
#include "common/log.hh"
#include "common/stats.hh"
#include "isa/inst.hh"
#include "isa/uop.hh"

namespace synchro::arch
{

// The ISA's lane-operand range must track the bus width: a lane tag
// encodable in crd/cwr has to address a real lane and read buffer.
static_assert(isa::BusLaneCount == BusLanes,
              "isa::BusLaneCount must equal arch::BusLanes");

class Tile
{
  public:
    static constexpr unsigned MemBytes = 32 * 1024; //!< 32 KB SRAM

    /**
     * @param column column index on the chip
     * @param index  position within the column (0 = top)
     */
    Tile(unsigned column, unsigned index);

    unsigned column() const { return column_; }
    unsigned index() const { return index_; }

    /// @name Architectural state access (tests, loaders)
    /// @{
    uint32_t reg(unsigned r) const;
    void setReg(unsigned r, uint32_t v);
    uint32_t preg(unsigned p) const;
    void setPreg(unsigned p, uint32_t v);
    int64_t acc(unsigned a) const;
    void setAcc(unsigned a, int64_t v);
    bool cc() const { return cc_; }
    void setCc(bool c) { cc_ = c; }
    /// @}

    /// @name Local SRAM access
    /// @{
    void writeMem(uint32_t addr, const void *data, uint32_t len);
    void readMem(uint32_t addr, void *data, uint32_t len) const;
    void writeMemWords(uint32_t addr, const std::vector<int32_t> &w);
    std::vector<int32_t> readMemWords(uint32_t addr, uint32_t n) const;
    void writeMemHalves(uint32_t addr, const std::vector<int16_t> &h);
    std::vector<int16_t> readMemHalves(uint32_t addr, uint32_t n) const;
    /// @}

    /**
     * Execute one pre-decoded non-control micro-op — the broadcast
     * fast path. The caller (SIMD controller) has already resolved
     * hazards; executing `crd` with an empty read buffer or `cwr`
     * with a full write buffer is a panic here, as is a control
     * micro-op reaching a tile.
     */
    void execute(const isa::MicroOp &uop);

    /**
     * Convenience for tests and single-shot callers: decode (with
     * full operand validation) and execute one instruction.
     */
    void execute(const isa::Inst &inst);

    /** A specialized executor for one micro-op kind. */
    using OpFn = void (*)(Tile &, const isa::MicroOp &);

    /**
     * The specialized executor for @p kind, or nullptr for control
     * kinds that may never reach a tile. The returned function runs
     * the op's datapath semantics only — activity counters are the
     * caller's job (execute() charges them per op, executeBlock() in
     * bulk).
     */
    static OpFn opThunk(isa::UopKind kind);

    /**
     * Execute @p n micro-ops of a pre-analyzed straight-line block
     * (isa::DecodedProgram::run_len) in one call — the Compiled
     * scheduler backend's broadcast path. @p fns are the matching
     * opThunk() pointers; @p broadcast / @p mems / @p macs are the
     * per-tile counter charges for the whole range (controller nops
     * are issued but not broadcast, so broadcast <= n).
     */
    void executeBlock(const OpFn *fns, const isa::MicroOp *uops,
                      uint32_t n, uint64_t broadcast, uint64_t mems,
                      uint64_t macs);

    /**
     * Execute @p iters complete firings of an @p n micro-op loop
     * body in one call — executeBlock() for a whole zero-overhead
     * loop. The counter charges cover all iterations.
     */
    void executeLoop(const OpFn *fns, const isa::MicroOp *uops,
                     uint32_t n, uint64_t iters, uint64_t broadcast,
                     uint64_t mems, uint64_t macs);

    /** A specialized executor running one op @p iters times. */
    using OpLoopFn = void (*)(Tile &, const isa::MicroOp &, uint64_t);

    /**
     * The iterated executor for @p kind (nullptr for control kinds).
     * For single-op loop bodies this beats @p iters opThunk() calls:
     * the op is inlined into the iteration loop, which the optimizer
     * then collapses or vectorizes. Semantics and panics are
     * identical to calling opThunk(kind) @p iters times.
     */
    static OpLoopFn opLoopThunk(isa::UopKind kind);

    /** executeLoop() for a one-op body via its opLoopThunk(). */
    void executeLoopOp(OpLoopFn fn, const isa::MicroOp &uop,
                       uint64_t iters, uint64_t broadcast,
                       uint64_t mems, uint64_t macs);

    /**
     * The single write buffer. Words may carry a lane tag (from a
     * tagged `cwr`); the DOU only drives a tagged word onto its
     * matching lane.
     */
    CommBuffer &writeBuffer() { return wbuf_; }
    const CommBuffer &writeBuffer() const { return wbuf_; }

    /**
     * Per-lane read buffers (paper Figure 2: the buffers align words
     * onto any 32-bit split of the 256-bit bus — one latch per
     * split). A DOU capture on lane L fills readBuffer(L); a tagged
     * `crd rd, L` drains exactly that buffer, so a join actor can
     * wait on each input edge independently. Untagged `crd` drains
     * the lowest-indexed valid buffer (legacy single-buffer code has
     * at most one valid at a time).
     */
    CommBuffer &readBuffer(unsigned lane = 0);
    const CommBuffer &readBuffer(unsigned lane = 0) const;

    /** True if any lane's read buffer holds a word. */
    bool anyReadValid() const;

    /** Reset architectural state (not SRAM contents). */
    void resetState();

    /** Zero the whole SRAM (stream refeed between work items). */
    void clearMem();

    /**
     * Snapshot @p other's architectural state and SRAM into this
     * tile: registers, accumulators, CC, memory, write buffer and
     * per-lane read buffers. Statistics are NOT copied — a clone
     * starts counting from zero. Chip::clone() drives this.
     */
    void copyStateFrom(const Tile &other);

    StatGroup &stats() { return stats_; }
    const StatGroup &stats() const { return stats_; }

  private:
    template <isa::UopKind K>
    static void opFn(Tile &t, const isa::MicroOp &uop);

    template <isa::UopKind K>
    static void opLoopFn(Tile &t, const isa::MicroOp &uop,
                         uint64_t iters);

    // Defined inline: Load/Store dominate mapped-app kernels, and the
    // Compiled backend's batched blocks execute them back to back.
    uint32_t
    loadFrom(uint32_t addr, unsigned size, bool sign_extend)
    {
        if (uint64_t(addr) + size > MemBytes) [[unlikely]]
            fatal("tile (%u,%u): load at 0x%x beyond SRAM", column_,
                  index_, addr);
        if (addr % size != 0) [[unlikely]]
            fatal("tile (%u,%u): unaligned %u-byte load at 0x%x",
                  column_, index_, size, addr);
        // Constant-size accesses per arm so each compiles to a single
        // load, not a libc memcpy call on a runtime length.
        uint32_t v;
        switch (size) {
          case 1:
            v = mem_[addr];
            break;
          case 2: {
            uint16_t h;
            std::memcpy(&h, mem_.data() + addr, 2);
            v = h;
            break;
          }
          default:
            std::memcpy(&v, mem_.data() + addr, 4);
            break;
        }
        if (sign_extend && size < 4) {
            unsigned shift = 32 - 8 * size;
            v = uint32_t(int32_t(v << shift) >> shift);
        }
        return v;
    }

    void
    storeTo(uint32_t addr, unsigned size, uint32_t value)
    {
        if (uint64_t(addr) + size > MemBytes) [[unlikely]]
            fatal("tile (%u,%u): store at 0x%x beyond SRAM", column_,
                  index_, addr);
        if (addr % size != 0) [[unlikely]]
            fatal("tile (%u,%u): unaligned %u-byte store at 0x%x",
                  column_, index_, size, addr);
        switch (size) {
          case 1:
            mem_[addr] = uint8_t(value);
            break;
          case 2: {
            uint16_t h = uint16_t(value);
            std::memcpy(mem_.data() + addr, &h, 2);
            break;
          }
          default:
            std::memcpy(mem_.data() + addr, &value, 4);
            break;
        }
    }

    uint32_t
    effectiveAddress(const isa::MicroOp &uop)
    {
        uint32_t p = pregs_[uop.rs1];
        if (!(uop.flags & isa::UopPostMod))
            return p + uint32_t(uop.imm);
        // Post-modify: access at p, then update the pointer.
        pregs_[uop.rs1] = p + uint32_t(uop.imm);
        return p;
    }

    unsigned column_;
    unsigned index_;

    std::array<uint32_t, isa::NumDataRegs> regs_{};
    std::array<uint32_t, isa::NumPtrRegs> pregs_{};
    std::array<int64_t, isa::NumAccums> accs_{};
    bool cc_ = false;

    std::vector<uint8_t> mem_;
    CommBuffer wbuf_;
    std::array<CommBuffer, BusLanes> rbufs_; //!< one per lane

    StatGroup stats_;
    Counter &instructions_;
    Counter &mem_ops_;
    Counter &mac_ops_;
};

} // namespace synchro::arch

#endif // SYNC_ARCH_TILE_HH
