/**
 * @file
 * The Synchroscalar interconnect: per-column 256-bit segmented buses
 * (8 separable 32-bit lanes, segment switches between tiles) plus the
 * single horizontal inter-column bus (paper Section 2.3, Figures 1-2).
 *
 * Topology modelled per lane:
 *
 *    H ======================================== (horizontal bus)
 *    |seg[3]          |seg[3]
 *   tile0            tile0
 *    |seg[0]          |seg[0]
 *   tile1            tile1          ... one chain per column
 *    |seg[1]          |seg[1]
 *   tile2            tile2
 *    |seg[2]          |seg[2]
 *   tile3            tile3
 *
 * Each 4-bit SEG field controls its segment switch at lane-pair
 * granularity: bit g of seg[k] connects lanes 2g and 2g+1 across
 * point k. With every switch closed the fabric is one chip-wide
 * broadcast bus; with switches open, disjoint segments carry
 * independent transfers in the same cycle (the "approximate bandwidth
 * of a mesh" of Section 2.3).
 */

#ifndef SYNC_ARCH_BUS_HH
#define SYNC_ARCH_BUS_HH

#include <cstdint>
#include <map>
#include <vector>

#include "arch/dou.hh"
#include "arch/tile.hh"
#include "common/stats.hh"

namespace synchro::arch
{

/** What one column contributes to a bus cycle. */
struct ColumnBusView
{
    const DouState *state = nullptr;
    std::vector<Tile *> tiles; //!< up to TilesPerColumn, by position
};

class BusFabric
{
  public:
    /**
     * @param self_timed  latency-insensitive delivery: a transfer
     *        whose destination read buffer is still full *defers* —
     *        the driver keeps its word and the slot retries next
     *        period — instead of overrunning. Producer-side
     *        backpressure (`cwr` stalls on a full write buffer) plus
     *        capture-side deferral self-time a whole DAG of edges;
     *        drop-new overruns never happen on scheduled transfers.
     */
    explicit BusFabric(unsigned n_columns, bool strict = false,
                       bool self_timed = false);

    /**
     * Resolve one bus cycle. Applies each column's current DOU
     * outputs: pops driving tiles' write buffers onto lanes, resolves
     * segment connectivity, pushes captured values into the per-lane
     * read buffers.
     *
     * A drive slot whose write buffer holds a word tagged for a
     * *different* lane defers (counted, never fatal): the word waits
     * for its own lane's slot. This is what lets one producer feed
     * several DAG edges through a single write buffer.
     *
     * In strict mode, structural hazards (two drivers in one connected
     * group), driver underruns (drive with empty write buffer) and
     * capture overruns (push into a still-valid read buffer) are
     * fatal; otherwise they are counted in stats.
     */
    void cycle(std::vector<ColumnBusView> &views);

    bool selfTimed() const { return self_timed_; }

    StatGroup &stats() { return stats_; }
    const StatGroup &stats() const { return stats_; }

    /** Total driver events (32-bit bus transactions). */
    uint64_t transfers() const { return transfers_.value(); }

    /**
     * Sum over transfers of the connected-group node count — a proxy
     * for the wire length each transfer toggled; the segmentation
     * ablation uses this to quantify the energy saved by splitting
     * the bus.
     */
    uint64_t wireSpanSum() const { return wire_span_.value(); }

  private:
    unsigned n_columns_;
    bool strict_;
    bool self_timed_;

    StatGroup stats_;
    Counter &transfers_;
    Counter &captures_;
    Counter &conflicts_;
    Counter &underruns_;
    Counter &overruns_;
    Counter &deferrals_;
    Counter &wire_span_;

    // Union-find scratch (reused across cycles).
    std::vector<int> parent_;
    int find(int x);
    void unite(int a, int b);

    /** One candidate driver of a connected segment group. */
    struct Driver
    {
        uint32_t value = 0;
        int src_node = 0;
        Tile *src_tile = nullptr;
        bool present = false;
        bool conflicted = false;
    };

    // Per-lane scratch (reused across cycles — the resolution runs
    // every active reference phase, so it must not allocate).
    std::vector<Driver> group_driver_;
    std::vector<char> group_deferred_;

    /**
     * Memoized resolution plan for one combination of DOU bus outputs
     * (buf bytes + seg nibbles of every column). Segment
     * connectivity, driver/capture slot lists and group node counts
     * depend only on that content, so steady-state schedules — which
     * revisit a small set of combinations every firing — skip the
     * union-find rebuild and the full column×tile rescan. Buffer
     * validity, lane tags and deferral remain dynamic in cycle().
     */
    struct LanePlan
    {
        struct Slot
        {
            uint8_t col = 0;
            uint8_t tile = 0;
            uint16_t group = 0; //!< dense id of the segment group
        };
        uint8_t lane = 0;
        std::vector<Slot> drivers;  //!< in scan order: col asc, tile asc
        std::vector<Slot> captures; //!< same order
        std::vector<uint32_t> group_nodes; //!< per group: node count
    };
    using CyclePlan = std::vector<LanePlan>; //!< lanes with a drive

    const CyclePlan &lookupPlan(const std::vector<ColumnBusView> &views);
    void buildPlan(const std::vector<ColumnBusView> &views,
                   CyclePlan &plan);

    //! Content key (one packed buf+seg word per column) -> plan.
    std::map<std::vector<uint64_t>, CyclePlan> plan_cache_;
    std::vector<uint64_t> plan_key_; //!< lookup scratch
};

} // namespace synchro::arch

#endif // SYNC_ARCH_BUS_HH
