/**
 * @file
 * The per-column SIMD controller (paper Section 2.2).
 *
 * One program memory and one thread of control drive the whole column:
 * the controller performs all control instructions itself and forwards
 * computation instructions to the tiles in lock step. Conditional
 * branches cost one extra stall cycle ("we provide a short pipeline in
 * the control unit to calculate branches quickly, and delay
 * instructions from reaching the processing elements"); zero-overhead
 * loops cost nothing because only the PC is consulted.
 *
 * The controller also implements Zero Overhead Rate Matching (paper
 * Section 2.4): a programmable counter pair (nops n, period d) makes
 * it dynamically insert n nops spread over every d issue slots, so a
 * column's computational rate can be matched to any target data rate
 * without code changes.
 */

#ifndef SYNC_ARCH_SIMD_CONTROLLER_HH
#define SYNC_ARCH_SIMD_CONTROLLER_HH

#include <cstdint>
#include <memory>
#include <vector>

#include "arch/tile.hh"
#include "common/stats.hh"
#include "isa/assembler.hh"
#include "isa/uop.hh"
#include "sim/types.hh"

namespace synchro::arch
{

/** How the controller reduces tile CC flags for branches. */
enum class CcMode
{
    Tile0, //!< use the designated tile's flag (default)
    Any,   //!< OR of the active tiles' flags
    All,   //!< AND of the active tiles' flags
};

class SimdController
{
  public:
    /** Instruction SRAM is 2 KB (paper Table 2) = 512 words. */
    static constexpr unsigned InsnMemWords = 512;

    explicit SimdController(unsigned column);

    /**
     * Load a program; fatal() if it exceeds instruction SRAM. The
     * program is decoded once into micro-ops through the shared
     * decoded-program cache (isa/uop.hh); the per-slot broadcast
     * path never re-decodes.
     */
    void loadProgram(const isa::Program &prog);

    /** The decoded program driving this column (null if none). */
    const std::shared_ptr<const isa::DecodedProgram> &
    decodedProgram() const
    {
        return prog_;
    }

    /**
     * Configure rate matching: insert @p nops nops over every
     * @p period issue slots (0/0 disables). fatal() if nops >= period
     * with period != 0.
     */
    void setRateMatch(uint32_t nops, uint32_t period);

    void setCcMode(CcMode mode) { cc_mode_ = mode; }

    /**
     * One column clock edge. Decides between halt, branch-stall slot,
     * ZORM nop, communication stall, control execution, and broadcast
     * to @p tiles (the active tiles of the column).
     */
    void cycle(const std::vector<Tile *> &tiles);

    /**
     * Execute up to @p max_slots issue slots as pre-analyzed
     * straight-line blocks (isa::DecodedProgram::run_len) — the
     * Compiled scheduler backend's edge path. Consumes only slots
     * whose behavior is statically known: broadcast compute ops,
     * controller nops, and ZORM-paced nops (folded in closed form).
     * Stops before any branch, halt, lsetup or comm op, so those —
     * and their hazard checks — run through cycle() at their exact
     * slot. Returns the number of slots consumed; 0 means the current
     * slot needs the per-slot path (caller falls back to cycle()).
     * State, statistics and tile effects are bit-identical to the
     * same number of cycle() calls.
     */
    Tick cycleBlock(const std::vector<Tile *> &tiles, Tick max_slots);

    /**
     * If the next slot would stall on a communication hazard
     * (CommRead with an empty buffer / CommWrite with a full one),
     * consume up to @p max_slots such stall slots — ZORM-paced nops
     * interleaved in closed form — in one call; returns 0 otherwise.
     * Only valid when the caller can prove the hazard cannot resolve
     * within the window: comm buffers change only through bus
     * activity (and this column's own broadcasts, which a stalled
     * column does not perform), so any window of bus-quiet reference
     * phases qualifies.
     */
    Tick stallBlock(const std::vector<Tile *> &tiles, Tick max_slots);

    bool halted() const { return halted_; }
    uint32_t pc() const { return pc_; }

    /** Restart the loaded program from address 0. */
    void reset();

    /**
     * Snapshot @p other's decoded program (shared, refcounted — no
     * re-decode), thunk tables, PC/halt/stall position, loop units,
     * ZORM configuration and CC mode into this controller.
     * Statistics are NOT copied. Chip::clone() drives this.
     */
    void copyStateFrom(const SimdController &other);

    StatGroup &stats() { return stats_; }
    const StatGroup &stats() const { return stats_; }

  private:
    struct LoopUnit
    {
        uint32_t start = 0;
        uint32_t end = 0;
        uint32_t remaining = 0;
    };

    bool readCc(const std::vector<Tile *> &tiles) const;
    void advancePc();

    /**
     * Fold a window of ZORM pacing in closed form: the least slot
     * count S that yields @p want_issues issue slots (capped at
     * @p avail total slots), split into issues + paced nops, with
     * zorm_acc_ advanced exactly as S per-slot Bresenham steps would.
     */
    void zormWindow(uint64_t want_issues, Tick avail,
                    uint64_t &issues, uint64_t &nops);

    unsigned column_;
    std::shared_ptr<const isa::DecodedProgram> prog_;
    std::vector<Tile::OpFn> fns_; //!< per-pc opThunk()s for blocks
    std::vector<Tile::OpLoopFn> loop_fns_; //!< per-pc opLoopThunk()s

    uint32_t pc_ = 0;
    bool halted_ = true;
    unsigned stall_ = 0; //!< pending branch-stall cycles

    LoopUnit loops_[2];
    std::vector<uint8_t> loop_stack_; //!< activation order of units

    uint32_t zorm_nops_ = 0;
    uint32_t zorm_period_ = 0;
    uint32_t zorm_acc_ = 0;

    CcMode cc_mode_ = CcMode::Tile0;

    StatGroup stats_;
    Counter &issued_;
    Counter &zorm_nops_issued_;
    Counter &branch_stalls_;
    Counter &comm_stalls_;
    Counter &halt_cycles_;
};

} // namespace synchro::arch

#endif // SYNC_ARCH_SIMD_CONTROLLER_HH
