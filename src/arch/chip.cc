#include "arch/chip.hh"

#include "common/log.hh"

namespace synchro::arch
{

Chip::Chip(const ChipConfig &cfg)
    : cfg_(cfg), fabric_(unsigned(cfg.dividers.size()), cfg.strict)
{
    if (cfg.dividers.empty())
        fatal("chip needs at least one column");
    for (unsigned c = 0; c < cfg.dividers.size(); ++c) {
        ClockDomain dom(cfg.ref_freq_mhz * 1e6, cfg.dividers[c]);
        columns_.push_back(std::make_unique<Column>(
            c, cfg.tiles_per_column, dom));
    }

    // Self-rescheduling events: one per column at its divided clock,
    // one chip-wide bus/DOU phase every tick.
    for (unsigned c = 0; c < columns_.size(); ++c) {
        column_events_.push_back(std::make_unique<LambdaEvent>(
            strprintf("column%u.edge", c), [this, c] { columnPhase(c); },
            Event::ClockEdgePri));
    }
    bus_event_ = std::make_unique<LambdaEvent>(
        "chip.bus", [this] { busPhase(); }, Event::BusPri);
}

void
Chip::columnPhase(unsigned c)
{
    Column &col = *columns_[c];
    col.clockEdge();
    if (!col.halted()) {
        eq_.schedule(column_events_[c].get(),
                     eq_.curTick() + col.clock().divider());
    }
}

void
Chip::busPhase()
{
    std::vector<ColumnBusView> views(columns_.size());
    // Step every DOU first so all outputs belong to the same cycle.
    for (unsigned c = 0; c < columns_.size(); ++c) {
        views[c].state = &columns_[c]->dou().current();
        views[c].tiles = columns_[c]->busTiles();
    }
    fabric_.cycle(views);
    for (auto &col : columns_)
        col->dou().step();

    if (!allHalted())
        eq_.schedule(bus_event_.get(), eq_.curTick() + 1);
}

bool
Chip::allHalted() const
{
    for (const auto &col : columns_) {
        if (!col->halted())
            return false;
    }
    return true;
}

RunResult
Chip::run(Tick max_ticks)
{
    if (allHalted())
        return {RunExit::AllHalted, eq_.curTick()};

    // (Re)arm events that are not pending: each column at its next
    // clock edge at-or-after now, the bus phase at every tick.
    for (unsigned c = 0; c < columns_.size(); ++c) {
        Column &col = *columns_[c];
        if (!col.halted() && !column_events_[c]->scheduled()) {
            Tick when = col.clock().onEdge(eq_.curTick())
                            ? eq_.curTick()
                            : col.clock().nextEdgeAfter(eq_.curTick());
            eq_.schedule(column_events_[c].get(), when);
        }
    }
    if (!bus_event_->scheduled())
        eq_.schedule(bus_event_.get(), eq_.curTick());

    Tick limit = eq_.curTick() + max_ticks;
    eq_.run(limit);

    if (allHalted())
        return {RunExit::AllHalted, eq_.curTick()};
    if (eq_.empty())
        return {RunExit::Deadlock, eq_.curTick()};
    return {RunExit::TickLimit, eq_.curTick()};
}

void
Chip::resetColumns()
{
    for (auto &col : columns_)
        col->reset();
}

} // namespace synchro::arch
