#include "arch/chip.hh"

#include "common/log.hh"

namespace synchro::arch
{

Chip::Chip(const ChipConfig &cfg)
    : cfg_(cfg),
      sched_(makeScheduler(cfg.scheduler, cfg.parallel_columns)),
      fabric_(unsigned(cfg.dividers.size()), cfg.strict,
              cfg.self_timed_bus)
{
    if (cfg.dividers.empty())
        fatal("chip needs at least one column");
    if (!cfg.phases.empty() &&
        cfg.phases.size() != cfg.dividers.size()) {
        fatal("chip config has %zu phases for %zu columns",
              cfg.phases.size(), cfg.dividers.size());
    }
    for (unsigned c = 0; c < cfg.dividers.size(); ++c) {
        Tick phase = cfg.phases.empty() ? 0 : cfg.phases[c];
        ClockDomain dom(cfg.ref_freq_mhz * 1e6, cfg.dividers[c],
                        phase);
        columns_.push_back(std::make_unique<Column>(
            c, cfg.tiles_per_column, dom));
    }
}

const ClockDomain &
Chip::domainClock(unsigned d) const
{
    return columns_[d]->clock();
}

bool
Chip::domainHalted(unsigned d) const
{
    return columns_[d]->halted();
}

void
Chip::domainEdge(unsigned d)
{
    columns_[d]->clockEdge();
}

void
Chip::refPhase()
{
    // All DOU outputs belong to the same cycle: resolve the fabric
    // against every column's current state, then step every DOU.
    for (unsigned c = 0; c < columns_.size(); ++c)
        views_[c].state = &columns_[c]->dou().current();
    fabric_.cycle(views_);
    for (auto &col : columns_)
        col->dou().step();
}

bool
Chip::refPhaseInert()
const
{
    // A reference phase moves nothing iff no DOU can drive or capture
    // now or on any future tick reached without a state change —
    // i.e. every DOU sits in an inert self-loop. The fabric itself is
    // stateless between cycles.
    for (const auto &col : columns_) {
        if (!col->dou().inertSelfLoop())
            return false;
    }
    return true;
}

void
Chip::skipRefPhases(Tick n)
{
    for (auto &col : columns_)
        col->dou().skipSteps(n);
}

Tick
Chip::domainEdgeBlock(unsigned d, Tick max_slots)
{
    return columns_[d]->clockEdgeBlock(max_slots);
}

Tick
Chip::commFreeAdvance(Tick max)
{
    // A window of reference phases can be skipped iff every column's
    // DOU walk through it touches no drive/capture state. Take the
    // minimum comm-free run across columns, then commit it everywhere
    // so all DOUs stay on the same tick.
    Tick k = max;
    for (auto &col : columns_) {
        k = Tick(col->dou().commFreeRun(k));
        if (k == 0)
            return 0;
    }
    for (auto &col : columns_)
        col->dou().fastForwardCommFree(k);
    return k;
}

Tick
Chip::commQuiet(Tick max) const
{
    Tick k = max;
    for (const auto &col : columns_) {
        k = Tick(col->dou().commFreeRun(k));
        if (k == 0)
            return 0;
    }
    return k;
}

Tick
Chip::domainStallBlock(unsigned d, Tick max_slots)
{
    return columns_[d]->stallBlock(max_slots);
}

bool
Chip::domainsIndependent() const
{
    // Issue slots touch only the column's own tiles and comm
    // buffers; the bus fabric — the one piece of cross-column state
    // — moves nothing inside a window proven by commQuiet(). So
    // between delivery slots, columns are free-running islands.
    return true;
}

void
Chip::domainRefAdvance(unsigned d, Tick n)
{
    // Column d's share of n comm-free reference phases: the fabric
    // contributes nothing (all buffer controls are zero for the
    // whole window), leaving only this column's DOU walk. The
    // scheduler's commQuiet() probe already proved the walk stays
    // comm-free for >= n cycles.
    columns_[d]->dou().fastForwardCommFree(n);
}

void
Chip::setSchedulerKind(SchedulerKind kind)
{
    if (kind == cfg_.scheduler)
        return;
    if (sched_->curTick() != 0)
        fatal("cannot switch scheduler backend at tick %llu; the "
              "chip has already run",
              (unsigned long long)sched_->curTick());
    cfg_.scheduler = kind;
    sched_ = makeScheduler(kind, cfg_.parallel_columns);
}

std::unique_ptr<Chip>
Chip::clone() const
{
    return clone(cfg_.scheduler);
}

std::unique_ptr<Chip>
Chip::clone(SchedulerKind scheduler) const
{
    if (sched_->curTick() != 0)
        fatal("Chip::clone at tick %llu: snapshot/clone is only "
              "defined for a programmed chip that has not run yet",
              (unsigned long long)sched_->curTick());
    ChipConfig cfg = cfg_;
    cfg.scheduler = scheduler;
    auto copy = std::make_unique<Chip>(cfg);
    for (unsigned c = 0; c < columns_.size(); ++c)
        copy->columns_[c]->copyStateFrom(*columns_[c]);
    return copy;
}

void
Chip::restart()
{
    resetColumns();
    sched_ = makeScheduler(cfg_.scheduler, cfg_.parallel_columns);
}

bool
Chip::atReconfigPoint() const
{
    return sched_->curTick() == 0 || allHalted();
}

void
Chip::retune(const std::vector<unsigned> &dividers)
{
    if (dividers.size() != columns_.size()) {
        fatal("Chip::retune: %zu dividers for %zu columns",
              dividers.size(), columns_.size());
    }
    if (!atReconfigPoint()) {
        fatal("Chip::retune at tick %llu: divider changes are only "
              "safe at a reconfiguration point (tick 0 or a fully "
              "drained chip)",
              (unsigned long long)sched_->curTick());
    }
    for (unsigned c = 0; c < columns_.size(); ++c)
        columns_[c]->retuneClock(dividers[c]);
    cfg_.dividers = dividers;
}

bool
Chip::allHalted() const
{
    for (const auto &col : columns_) {
        if (!col->halted())
            return false;
    }
    return true;
}

RunResult
Chip::run(Tick max_ticks)
{
    if (allHalted())
        return {RunExit::AllHalted, sched_->curTick()};

    // Tile population only changes between runs; refresh the bus
    // views once here instead of re-allocating them every tick.
    views_.resize(columns_.size());
    for (unsigned c = 0; c < columns_.size(); ++c)
        views_[c].tiles = columns_[c]->busTiles();

    SchedStop stop = sched_->run(*this, max_ticks);

    RunExit exit = RunExit::TickLimit;
    switch (stop) {
      case SchedStop::AllHalted:
        exit = RunExit::AllHalted;
        break;
      case SchedStop::Idle:
        exit = RunExit::Deadlock;
        break;
      case SchedStop::TickLimit:
        exit = RunExit::TickLimit;
        break;
    }
    return {exit, sched_->curTick()};
}

void
Chip::resetColumns()
{
    for (auto &col : columns_)
        col->reset();
}

void
Chip::forEachStat(
    const std::function<void(const std::string &, uint64_t)> &fn)
    const
{
    for (const auto &kv : fabric_.stats().all())
        fn("bus." + kv.first, kv.second.value());
    for (unsigned c = 0; c < columns_.size(); ++c) {
        const Column &col = *columns_[c];
        std::string prefix = strprintf("col%u.", c);
        for (const auto &kv : col.controller().stats().all())
            fn(prefix + "ctrl." + kv.first, kv.second.value());
        for (const auto &kv : col.dou().stats().all())
            fn(prefix + "dou." + kv.first, kv.second.value());
        for (unsigned t = 0; t < col.numTiles(); ++t) {
            std::string tprefix = prefix + strprintf("tile%u.", t);
            for (const auto &kv : col.tile(t).stats().all())
                fn(tprefix + kv.first, kv.second.value());
        }
    }
}

} // namespace synchro::arch
