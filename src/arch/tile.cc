#include "arch/tile.hh"

#include <cstring>

#include "common/fixed.hh"
#include "common/log.hh"

namespace synchro::arch
{

using isa::HalfSel;
using isa::Inst;
using isa::MemMode;
using isa::Opcode;

Tile::Tile(unsigned column, unsigned index)
    : column_(column), index_(index), mem_(MemBytes, 0),
      instructions_(stats_.counter("instructions")),
      mem_ops_(stats_.counter("memOps")),
      mac_ops_(stats_.counter("macOps"))
{
}

uint32_t
Tile::reg(unsigned r) const
{
    sync_assert(r < isa::NumDataRegs, "bad data reg %u", r);
    return regs_[r];
}

void
Tile::setReg(unsigned r, uint32_t v)
{
    sync_assert(r < isa::NumDataRegs, "bad data reg %u", r);
    regs_[r] = v;
}

uint32_t
Tile::preg(unsigned p) const
{
    sync_assert(p < isa::NumPtrRegs, "bad pointer reg %u", p);
    return pregs_[p];
}

void
Tile::setPreg(unsigned p, uint32_t v)
{
    sync_assert(p < isa::NumPtrRegs, "bad pointer reg %u", p);
    pregs_[p] = v;
}

int64_t
Tile::acc(unsigned a) const
{
    sync_assert(a < isa::NumAccums, "bad accumulator %u", a);
    return accs_[a];
}

void
Tile::setAcc(unsigned a, int64_t v)
{
    sync_assert(a < isa::NumAccums, "bad accumulator %u", a);
    accs_[a] = sat40(v);
}

void
Tile::writeMem(uint32_t addr, const void *data, uint32_t len)
{
    if (uint64_t(addr) + len > MemBytes)
        fatal("tile (%u,%u): writeMem [%u, %u) beyond %u-byte SRAM",
              column_, index_, addr, addr + len, MemBytes);
    std::memcpy(mem_.data() + addr, data, len);
}

void
Tile::readMem(uint32_t addr, void *data, uint32_t len) const
{
    if (uint64_t(addr) + len > MemBytes)
        fatal("tile (%u,%u): readMem [%u, %u) beyond %u-byte SRAM",
              column_, index_, addr, addr + len, MemBytes);
    std::memcpy(data, mem_.data() + addr, len);
}

void
Tile::writeMemWords(uint32_t addr, const std::vector<int32_t> &w)
{
    writeMem(addr, w.data(), uint32_t(w.size() * 4));
}

std::vector<int32_t>
Tile::readMemWords(uint32_t addr, uint32_t n) const
{
    std::vector<int32_t> out(n);
    readMem(addr, out.data(), n * 4);
    return out;
}

void
Tile::writeMemHalves(uint32_t addr, const std::vector<int16_t> &h)
{
    writeMem(addr, h.data(), uint32_t(h.size() * 2));
}

std::vector<int16_t>
Tile::readMemHalves(uint32_t addr, uint32_t n) const
{
    std::vector<int16_t> out(n);
    readMem(addr, out.data(), n * 2);
    return out;
}

void
Tile::resetState()
{
    regs_.fill(0);
    pregs_.fill(0);
    accs_.fill(0);
    cc_ = false;
    wbuf_.clear();
    rbuf_.clear();
}

uint32_t
Tile::loadFrom(uint32_t addr, unsigned size, bool sign_extend)
{
    if (uint64_t(addr) + size > MemBytes)
        fatal("tile (%u,%u): load at 0x%x beyond SRAM", column_,
              index_, addr);
    if (addr % size != 0)
        fatal("tile (%u,%u): unaligned %u-byte load at 0x%x", column_,
              index_, size, addr);
    uint32_t v = 0;
    std::memcpy(&v, mem_.data() + addr, size);
    if (sign_extend && size < 4) {
        unsigned shift = 32 - 8 * size;
        v = uint32_t(int32_t(v << shift) >> shift);
    }
    return v;
}

void
Tile::storeTo(uint32_t addr, unsigned size, uint32_t value)
{
    if (uint64_t(addr) + size > MemBytes)
        fatal("tile (%u,%u): store at 0x%x beyond SRAM", column_,
              index_, addr);
    if (addr % size != 0)
        fatal("tile (%u,%u): unaligned %u-byte store at 0x%x", column_,
              index_, size, addr);
    std::memcpy(mem_.data() + addr, &value, size);
}

namespace
{

unsigned
memAccessSize(Opcode op)
{
    switch (op) {
      case Opcode::LDW:
      case Opcode::STW:
        return 4;
      case Opcode::LDH:
      case Opcode::LDHU:
      case Opcode::STH:
        return 2;
      default:
        return 1;
    }
}

int16_t
half(uint32_t v, bool high)
{
    return int16_t(high ? (v >> 16) : (v & 0xffff));
}

/** Signed 16x16 product of the selected halves. */
int32_t
halfProduct(uint32_t a, uint32_t b, HalfSel sel)
{
    bool a_hi = sel == HalfSel::HL || sel == HalfSel::HH;
    bool b_hi = sel == HalfSel::LH || sel == HalfSel::HH;
    return int32_t(half(a, a_hi)) * int32_t(half(b, b_hi));
}

} // namespace

uint32_t
Tile::effectiveAddress(const Inst &inst, unsigned size)
{
    uint32_t p = pregs_[inst.rs1];
    if (inst.mode == MemMode::Offset)
        return p + uint32_t(inst.imm);
    // Post-modify: access at p, then update the pointer.
    pregs_[inst.rs1] = p + uint32_t(inst.imm);
    (void)size;
    return p;
}

void
Tile::execute(const Inst &inst)
{
    ++instructions_;
    auto &r = regs_;

    switch (inst.op) {
      case Opcode::ADD:
        r[inst.rd] = r[inst.rs1] + r[inst.rs2];
        break;
      case Opcode::SUB:
        r[inst.rd] = r[inst.rs1] - r[inst.rs2];
        break;
      case Opcode::AND_:
        r[inst.rd] = r[inst.rs1] & r[inst.rs2];
        break;
      case Opcode::OR_:
        r[inst.rd] = r[inst.rs1] | r[inst.rs2];
        break;
      case Opcode::XOR_:
        r[inst.rd] = r[inst.rs1] ^ r[inst.rs2];
        break;
      case Opcode::MIN:
        r[inst.rd] = uint32_t(std::min(int32_t(r[inst.rs1]),
                                       int32_t(r[inst.rs2])));
        break;
      case Opcode::MAX:
        r[inst.rd] = uint32_t(std::max(int32_t(r[inst.rs1]),
                                       int32_t(r[inst.rs2])));
        break;
      case Opcode::LSL:
        r[inst.rd] = r[inst.rs1] << (r[inst.rs2] & 31);
        break;
      case Opcode::LSR:
        r[inst.rd] = r[inst.rs1] >> (r[inst.rs2] & 31);
        break;
      case Opcode::ASR:
        r[inst.rd] =
            uint32_t(int32_t(r[inst.rs1]) >> (r[inst.rs2] & 31));
        break;
      case Opcode::MUL:
        r[inst.rd] =
            uint32_t(int64_t(int32_t(r[inst.rs1])) *
                     int64_t(int32_t(r[inst.rs2])));
        break;
      case Opcode::SEL:
        r[inst.rd] = cc_ ? r[inst.rs1] : r[inst.rs2];
        break;

      case Opcode::NEG:
        r[inst.rd] = uint32_t(-int32_t(r[inst.rs1]));
        break;
      case Opcode::NOT_:
        r[inst.rd] = ~r[inst.rs1];
        break;
      case Opcode::ABS: {
        // DSP-style saturating abs: |INT32_MIN| -> INT32_MAX.
        int32_t v = int32_t(r[inst.rs1]);
        r[inst.rd] = v == INT32_MIN ? uint32_t(INT32_MAX)
                                    : uint32_t(v < 0 ? -v : v);
        break;
      }
      case Opcode::MOV:
        r[inst.rd] = r[inst.rs1];
        break;

      case Opcode::ADDI:
        r[inst.rd] += uint32_t(inst.imm);
        break;
      case Opcode::LSLI:
        r[inst.rd] = r[inst.rs1] << inst.imm;
        break;
      case Opcode::LSRI:
        r[inst.rd] = r[inst.rs1] >> inst.imm;
        break;
      case Opcode::ASRI:
        r[inst.rd] = uint32_t(int32_t(r[inst.rs1]) >> inst.imm);
        break;

      case Opcode::ADD16: {
        uint32_t a = r[inst.rs1], b = r[inst.rs2];
        uint32_t lo = uint16_t(sat16(int64_t(half(a, false)) +
                                     half(b, false)));
        uint32_t hi = uint16_t(sat16(int64_t(half(a, true)) +
                                     half(b, true)));
        r[inst.rd] = (hi << 16) | lo;
        break;
      }
      case Opcode::SUB16: {
        uint32_t a = r[inst.rs1], b = r[inst.rs2];
        uint32_t lo = uint16_t(sat16(int64_t(half(a, false)) -
                                     half(b, false)));
        uint32_t hi = uint16_t(sat16(int64_t(half(a, true)) -
                                     half(b, true)));
        r[inst.rd] = (hi << 16) | lo;
        break;
      }

      case Opcode::MAC:
        ++mac_ops_;
        accs_[inst.acc] = sat40(
            accs_[inst.acc] +
            halfProduct(r[inst.rs1], r[inst.rs2], inst.hsel));
        break;
      case Opcode::MSU:
        ++mac_ops_;
        accs_[inst.acc] = sat40(
            accs_[inst.acc] -
            halfProduct(r[inst.rs1], r[inst.rs2], inst.hsel));
        break;
      case Opcode::SAA: {
        // Video-ALU sum of absolute byte differences (4 lanes).
        ++mac_ops_;
        uint32_t a = r[inst.rs1], b = r[inst.rs2];
        int64_t sum = 0;
        for (unsigned i = 0; i < 4; ++i) {
            int32_t ba = int32_t((a >> (8 * i)) & 0xff);
            int32_t bb = int32_t((b >> (8 * i)) & 0xff);
            sum += ba > bb ? ba - bb : bb - ba;
        }
        accs_[inst.acc] = sat40(accs_[inst.acc] + sum);
        break;
      }
      case Opcode::ACLR:
        accs_[inst.acc] = 0;
        break;
      case Opcode::AEXT:
        r[inst.rd] = uint32_t(sat32(accs_[inst.acc] >> inst.imm));
        break;

      case Opcode::MOVI:
        r[inst.rd] = uint32_t(inst.imm);
        break;
      case Opcode::MOVIH:
        r[inst.rd] =
            (r[inst.rd] & 0xffff) | (uint32_t(inst.imm) << 16);
        break;
      case Opcode::MOVPI:
        pregs_[inst.rd] = uint32_t(inst.imm);
        break;
      case Opcode::MOVP:
        pregs_[inst.rd] = r[inst.rs1];
        break;
      case Opcode::MOVRP:
        r[inst.rd] = pregs_[inst.rs1];
        break;
      case Opcode::PADDI:
        pregs_[inst.rd] += uint32_t(inst.imm);
        break;
      case Opcode::TID:
        r[inst.rd] = index_;
        break;

      case Opcode::LDW:
      case Opcode::LDH:
      case Opcode::LDB: {
        ++mem_ops_;
        unsigned size = memAccessSize(inst.op);
        r[inst.rd] = loadFrom(effectiveAddress(inst, size), size, true);
        break;
      }
      case Opcode::LDHU:
      case Opcode::LDBU: {
        ++mem_ops_;
        unsigned size = memAccessSize(inst.op);
        r[inst.rd] =
            loadFrom(effectiveAddress(inst, size), size, false);
        break;
      }
      case Opcode::STW:
      case Opcode::STH:
      case Opcode::STB: {
        ++mem_ops_;
        unsigned size = memAccessSize(inst.op);
        storeTo(effectiveAddress(inst, size), size, r[inst.rd]);
        break;
      }

      case Opcode::CMPEQ:
        cc_ = r[inst.rd] == r[inst.rs1];
        break;
      case Opcode::CMPLT:
        cc_ = int32_t(r[inst.rd]) < int32_t(r[inst.rs1]);
        break;
      case Opcode::CMPLE:
        cc_ = int32_t(r[inst.rd]) <= int32_t(r[inst.rs1]);
        break;
      case Opcode::CMPLTU:
        cc_ = r[inst.rd] < r[inst.rs1];
        break;

      case Opcode::CWR:
        if (!wbuf_.push(r[inst.rd]))
            panic("tile (%u,%u): cwr into a full write buffer "
                  "(controller must stall first)",
                  column_, index_);
        break;
      case Opcode::CRD:
        if (!rbuf_.valid())
            panic("tile (%u,%u): crd from an empty read buffer "
                  "(controller must stall first)",
                  column_, index_);
        r[inst.rd] = rbuf_.pop();
        break;

      case Opcode::NOP:
        break;

      default:
        panic("tile (%u,%u): control opcode '%s' broadcast to tile",
              column_, index_, isa::mnemonic(inst.op));
    }
}

} // namespace synchro::arch
