#include "arch/tile.hh"

#include <cstring>

#include "common/fixed.hh"
#include "common/log.hh"

namespace synchro::arch
{

using isa::Inst;
using isa::MicroOp;
using isa::UopKind;

Tile::Tile(unsigned column, unsigned index)
    : column_(column), index_(index), mem_(MemBytes, 0),
      instructions_(stats_.counter("instructions")),
      mem_ops_(stats_.counter("memOps")),
      mac_ops_(stats_.counter("macOps"))
{
}

uint32_t
Tile::reg(unsigned r) const
{
    sync_assert(r < isa::NumDataRegs, "bad data reg %u", r);
    return regs_[r];
}

void
Tile::setReg(unsigned r, uint32_t v)
{
    sync_assert(r < isa::NumDataRegs, "bad data reg %u", r);
    regs_[r] = v;
}

uint32_t
Tile::preg(unsigned p) const
{
    sync_assert(p < isa::NumPtrRegs, "bad pointer reg %u", p);
    return pregs_[p];
}

void
Tile::setPreg(unsigned p, uint32_t v)
{
    sync_assert(p < isa::NumPtrRegs, "bad pointer reg %u", p);
    pregs_[p] = v;
}

int64_t
Tile::acc(unsigned a) const
{
    sync_assert(a < isa::NumAccums, "bad accumulator %u", a);
    return accs_[a];
}

void
Tile::setAcc(unsigned a, int64_t v)
{
    sync_assert(a < isa::NumAccums, "bad accumulator %u", a);
    accs_[a] = sat40(v);
}

void
Tile::writeMem(uint32_t addr, const void *data, uint32_t len)
{
    if (uint64_t(addr) + len > MemBytes)
        fatal("tile (%u,%u): writeMem [%u, %u) beyond %u-byte SRAM",
              column_, index_, addr, addr + len, MemBytes);
    std::memcpy(mem_.data() + addr, data, len);
}

void
Tile::readMem(uint32_t addr, void *data, uint32_t len) const
{
    if (uint64_t(addr) + len > MemBytes)
        fatal("tile (%u,%u): readMem [%u, %u) beyond %u-byte SRAM",
              column_, index_, addr, addr + len, MemBytes);
    std::memcpy(data, mem_.data() + addr, len);
}

void
Tile::writeMemWords(uint32_t addr, const std::vector<int32_t> &w)
{
    writeMem(addr, w.data(), uint32_t(w.size() * 4));
}

std::vector<int32_t>
Tile::readMemWords(uint32_t addr, uint32_t n) const
{
    std::vector<int32_t> out(n);
    readMem(addr, out.data(), n * 4);
    return out;
}

void
Tile::writeMemHalves(uint32_t addr, const std::vector<int16_t> &h)
{
    writeMem(addr, h.data(), uint32_t(h.size() * 2));
}

std::vector<int16_t>
Tile::readMemHalves(uint32_t addr, uint32_t n) const
{
    std::vector<int16_t> out(n);
    readMem(addr, out.data(), n * 2);
    return out;
}

void
Tile::resetState()
{
    regs_.fill(0);
    pregs_.fill(0);
    accs_.fill(0);
    cc_ = false;
    wbuf_.clear();
    for (auto &b : rbufs_)
        b.clear();
}

CommBuffer &
Tile::readBuffer(unsigned lane)
{
    return rbufs_.at(lane);
}

const CommBuffer &
Tile::readBuffer(unsigned lane) const
{
    return rbufs_.at(lane);
}

bool
Tile::anyReadValid() const
{
    for (const auto &b : rbufs_) {
        if (b.valid())
            return true;
    }
    return false;
}

uint32_t
Tile::loadFrom(uint32_t addr, unsigned size, bool sign_extend)
{
    if (uint64_t(addr) + size > MemBytes)
        fatal("tile (%u,%u): load at 0x%x beyond SRAM", column_,
              index_, addr);
    if (addr % size != 0)
        fatal("tile (%u,%u): unaligned %u-byte load at 0x%x", column_,
              index_, size, addr);
    uint32_t v = 0;
    std::memcpy(&v, mem_.data() + addr, size);
    if (sign_extend && size < 4) {
        unsigned shift = 32 - 8 * size;
        v = uint32_t(int32_t(v << shift) >> shift);
    }
    return v;
}

void
Tile::storeTo(uint32_t addr, unsigned size, uint32_t value)
{
    if (uint64_t(addr) + size > MemBytes)
        fatal("tile (%u,%u): store at 0x%x beyond SRAM", column_,
              index_, addr);
    if (addr % size != 0)
        fatal("tile (%u,%u): unaligned %u-byte store at 0x%x", column_,
              index_, size, addr);
    std::memcpy(mem_.data() + addr, &value, size);
}

namespace
{

int16_t
half(uint32_t v, bool high)
{
    return int16_t(high ? (v >> 16) : (v & 0xffff));
}

/** Signed 16x16 product of the halves selected at decode time. */
int32_t
halfProduct(uint32_t a, uint32_t b, uint8_t flags)
{
    return int32_t(half(a, flags & isa::UopAHigh)) *
           int32_t(half(b, flags & isa::UopBHigh));
}

} // namespace

uint32_t
Tile::effectiveAddress(const MicroOp &uop)
{
    uint32_t p = pregs_[uop.rs1];
    if (!(uop.flags & isa::UopPostMod))
        return p + uint32_t(uop.imm);
    // Post-modify: access at p, then update the pointer.
    pregs_[uop.rs1] = p + uint32_t(uop.imm);
    return p;
}

void
Tile::execute(const Inst &inst)
{
    execute(isa::decodeInst(inst));
}

void
Tile::execute(const MicroOp &uop)
{
    ++instructions_;
    auto &r = regs_;

    switch (uop.kind) {
      case UopKind::Add:
        r[uop.rd] = r[uop.rs1] + r[uop.rs2];
        break;
      case UopKind::Sub:
        r[uop.rd] = r[uop.rs1] - r[uop.rs2];
        break;
      case UopKind::And:
        r[uop.rd] = r[uop.rs1] & r[uop.rs2];
        break;
      case UopKind::Or:
        r[uop.rd] = r[uop.rs1] | r[uop.rs2];
        break;
      case UopKind::Xor:
        r[uop.rd] = r[uop.rs1] ^ r[uop.rs2];
        break;
      case UopKind::Min:
        r[uop.rd] = uint32_t(std::min(int32_t(r[uop.rs1]),
                                      int32_t(r[uop.rs2])));
        break;
      case UopKind::Max:
        r[uop.rd] = uint32_t(std::max(int32_t(r[uop.rs1]),
                                      int32_t(r[uop.rs2])));
        break;
      case UopKind::Lsl:
        r[uop.rd] = r[uop.rs1] << (r[uop.rs2] & 31);
        break;
      case UopKind::Lsr:
        r[uop.rd] = r[uop.rs1] >> (r[uop.rs2] & 31);
        break;
      case UopKind::Asr:
        r[uop.rd] =
            uint32_t(int32_t(r[uop.rs1]) >> (r[uop.rs2] & 31));
        break;
      case UopKind::Mul:
        r[uop.rd] = uint32_t(int64_t(int32_t(r[uop.rs1])) *
                             int64_t(int32_t(r[uop.rs2])));
        break;
      case UopKind::Sel:
        r[uop.rd] = cc_ ? r[uop.rs1] : r[uop.rs2];
        break;

      case UopKind::Neg:
        r[uop.rd] = uint32_t(-int32_t(r[uop.rs1]));
        break;
      case UopKind::Not:
        r[uop.rd] = ~r[uop.rs1];
        break;
      case UopKind::Abs: {
        // DSP-style saturating abs: |INT32_MIN| -> INT32_MAX.
        int32_t v = int32_t(r[uop.rs1]);
        r[uop.rd] = v == INT32_MIN ? uint32_t(INT32_MAX)
                                   : uint32_t(v < 0 ? -v : v);
        break;
      }
      case UopKind::Mov:
        r[uop.rd] = r[uop.rs1];
        break;

      case UopKind::AddImm:
        r[uop.rd] += uint32_t(uop.imm);
        break;
      case UopKind::LslImm:
        r[uop.rd] = r[uop.rs1] << uop.imm;
        break;
      case UopKind::LsrImm:
        r[uop.rd] = r[uop.rs1] >> uop.imm;
        break;
      case UopKind::AsrImm:
        r[uop.rd] = uint32_t(int32_t(r[uop.rs1]) >> uop.imm);
        break;

      case UopKind::Add16: {
        uint32_t a = r[uop.rs1], b = r[uop.rs2];
        uint32_t lo = uint16_t(sat16(int64_t(half(a, false)) +
                                     half(b, false)));
        uint32_t hi = uint16_t(sat16(int64_t(half(a, true)) +
                                     half(b, true)));
        r[uop.rd] = (hi << 16) | lo;
        break;
      }
      case UopKind::Sub16: {
        uint32_t a = r[uop.rs1], b = r[uop.rs2];
        uint32_t lo = uint16_t(sat16(int64_t(half(a, false)) -
                                     half(b, false)));
        uint32_t hi = uint16_t(sat16(int64_t(half(a, true)) -
                                     half(b, true)));
        r[uop.rd] = (hi << 16) | lo;
        break;
      }

      case UopKind::Mac:
        ++mac_ops_;
        accs_[uop.acc] = sat40(
            accs_[uop.acc] +
            halfProduct(r[uop.rs1], r[uop.rs2], uop.flags));
        break;
      case UopKind::Msu:
        ++mac_ops_;
        accs_[uop.acc] = sat40(
            accs_[uop.acc] -
            halfProduct(r[uop.rs1], r[uop.rs2], uop.flags));
        break;
      case UopKind::Saa: {
        // Video-ALU sum of absolute byte differences (4 lanes).
        ++mac_ops_;
        uint32_t a = r[uop.rs1], b = r[uop.rs2];
        int64_t sum = 0;
        for (unsigned i = 0; i < 4; ++i) {
            int32_t ba = int32_t((a >> (8 * i)) & 0xff);
            int32_t bb = int32_t((b >> (8 * i)) & 0xff);
            sum += ba > bb ? ba - bb : bb - ba;
        }
        accs_[uop.acc] = sat40(accs_[uop.acc] + sum);
        break;
      }
      case UopKind::AClr:
        accs_[uop.acc] = 0;
        break;
      case UopKind::AExt:
        r[uop.rd] = uint32_t(sat32(accs_[uop.acc] >> uop.imm));
        break;

      case UopKind::MovImm:
        r[uop.rd] = uint32_t(uop.imm);
        break;
      case UopKind::MovImmHigh:
        r[uop.rd] = (r[uop.rd] & 0xffff) | (uint32_t(uop.imm) << 16);
        break;
      case UopKind::MovPtrImm:
        pregs_[uop.rd] = uint32_t(uop.imm);
        break;
      case UopKind::MovPtr:
        pregs_[uop.rd] = r[uop.rs1];
        break;
      case UopKind::MovFromPtr:
        r[uop.rd] = pregs_[uop.rs1];
        break;
      case UopKind::PtrAddImm:
        pregs_[uop.rd] += uint32_t(uop.imm);
        break;
      case UopKind::TileId:
        r[uop.rd] = index_;
        break;

      case UopKind::Load:
        ++mem_ops_;
        r[uop.rd] = loadFrom(effectiveAddress(uop), uop.mem_size,
                             uop.flags & isa::UopSignExtend);
        break;
      case UopKind::Store:
        ++mem_ops_;
        storeTo(effectiveAddress(uop), uop.mem_size, r[uop.rd]);
        break;

      case UopKind::CmpEq:
        cc_ = r[uop.rd] == r[uop.rs1];
        break;
      case UopKind::CmpLt:
        cc_ = int32_t(r[uop.rd]) < int32_t(r[uop.rs1]);
        break;
      case UopKind::CmpLe:
        cc_ = int32_t(r[uop.rd]) <= int32_t(r[uop.rs1]);
        break;
      case UopKind::CmpLtu:
        cc_ = r[uop.rd] < r[uop.rs1];
        break;

      case UopKind::CommWrite:
        if (!wbuf_.push(r[uop.rd], int(uop.imm)))
            panic("tile (%u,%u): cwr into a full write buffer "
                  "(controller must stall first)",
                  column_, index_);
        break;
      case UopKind::CommRead:
        if (uop.imm >= 0) {
            CommBuffer &b = rbufs_[unsigned(uop.imm)];
            if (!b.valid())
                panic("tile (%u,%u): crd from empty lane-%d read "
                      "buffer (controller must stall first)",
                      column_, index_, int(uop.imm));
            r[uop.rd] = b.pop();
            break;
        }
        for (auto &b : rbufs_) {
            if (b.valid()) {
                r[uop.rd] = b.pop();
                return;
            }
        }
        panic("tile (%u,%u): crd with no valid read buffer "
              "(controller must stall first)",
              column_, index_);
        break;

      case UopKind::Nop:
        break;

      default:
        panic("tile (%u,%u): control micro-op %u broadcast to tile",
              column_, index_, unsigned(uop.kind));
    }
}

} // namespace synchro::arch
