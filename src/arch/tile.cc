#include "arch/tile.hh"

#include <algorithm>
#include <cstring>

#include "common/fixed.hh"
#include "common/log.hh"

namespace synchro::arch
{

using isa::Inst;
using isa::MicroOp;
using isa::UopKind;

Tile::Tile(unsigned column, unsigned index)
    : column_(column), index_(index), mem_(MemBytes, 0),
      instructions_(stats_.counter("instructions")),
      mem_ops_(stats_.counter("memOps")),
      mac_ops_(stats_.counter("macOps"))
{
}

uint32_t
Tile::reg(unsigned r) const
{
    sync_assert(r < isa::NumDataRegs, "bad data reg %u", r);
    return regs_[r];
}

void
Tile::setReg(unsigned r, uint32_t v)
{
    sync_assert(r < isa::NumDataRegs, "bad data reg %u", r);
    regs_[r] = v;
}

uint32_t
Tile::preg(unsigned p) const
{
    sync_assert(p < isa::NumPtrRegs, "bad pointer reg %u", p);
    return pregs_[p];
}

void
Tile::setPreg(unsigned p, uint32_t v)
{
    sync_assert(p < isa::NumPtrRegs, "bad pointer reg %u", p);
    pregs_[p] = v;
}

int64_t
Tile::acc(unsigned a) const
{
    sync_assert(a < isa::NumAccums, "bad accumulator %u", a);
    return accs_[a];
}

void
Tile::setAcc(unsigned a, int64_t v)
{
    sync_assert(a < isa::NumAccums, "bad accumulator %u", a);
    accs_[a] = sat40(v);
}

void
Tile::writeMem(uint32_t addr, const void *data, uint32_t len)
{
    if (uint64_t(addr) + len > MemBytes)
        fatal("tile (%u,%u): writeMem [%u, %u) beyond %u-byte SRAM",
              column_, index_, addr, addr + len, MemBytes);
    std::memcpy(mem_.data() + addr, data, len);
}

void
Tile::readMem(uint32_t addr, void *data, uint32_t len) const
{
    if (uint64_t(addr) + len > MemBytes)
        fatal("tile (%u,%u): readMem [%u, %u) beyond %u-byte SRAM",
              column_, index_, addr, addr + len, MemBytes);
    std::memcpy(data, mem_.data() + addr, len);
}

void
Tile::writeMemWords(uint32_t addr, const std::vector<int32_t> &w)
{
    writeMem(addr, w.data(), uint32_t(w.size() * 4));
}

std::vector<int32_t>
Tile::readMemWords(uint32_t addr, uint32_t n) const
{
    std::vector<int32_t> out(n);
    readMem(addr, out.data(), n * 4);
    return out;
}

void
Tile::writeMemHalves(uint32_t addr, const std::vector<int16_t> &h)
{
    writeMem(addr, h.data(), uint32_t(h.size() * 2));
}

std::vector<int16_t>
Tile::readMemHalves(uint32_t addr, uint32_t n) const
{
    std::vector<int16_t> out(n);
    readMem(addr, out.data(), n * 2);
    return out;
}

void
Tile::resetState()
{
    regs_.fill(0);
    pregs_.fill(0);
    accs_.fill(0);
    cc_ = false;
    wbuf_.clear();
    for (auto &b : rbufs_)
        b.clear();
}

void
Tile::clearMem()
{
    std::fill(mem_.begin(), mem_.end(), uint8_t(0));
}

void
Tile::copyStateFrom(const Tile &other)
{
    regs_ = other.regs_;
    pregs_ = other.pregs_;
    accs_ = other.accs_;
    cc_ = other.cc_;
    mem_ = other.mem_;
    wbuf_ = other.wbuf_;
    rbufs_ = other.rbufs_;
}

CommBuffer &
Tile::readBuffer(unsigned lane)
{
    return rbufs_.at(lane);
}

const CommBuffer &
Tile::readBuffer(unsigned lane) const
{
    return rbufs_.at(lane);
}

bool
Tile::anyReadValid() const
{
    for (const auto &b : rbufs_) {
        if (b.valid())
            return true;
    }
    return false;
}

namespace
{

int16_t
half(uint32_t v, bool high)
{
    return int16_t(high ? (v >> 16) : (v & 0xffff));
}

/** Signed 16x16 product of the halves selected at decode time. */
int32_t
halfProduct(uint32_t a, uint32_t b, uint8_t flags)
{
    return int32_t(half(a, flags & isa::UopAHigh)) *
           int32_t(half(b, flags & isa::UopBHigh));
}

} // namespace

void
Tile::execute(const Inst &inst)
{
    execute(isa::decodeInst(inst));
}

/**
 * The single source of op semantics: one specialization per
 * executable UopKind. execute() dispatches through a switch (the
 * per-slot interpreter) and the Compiled backend calls the same
 * functions through opThunk() pointers, so the two paths cannot
 * drift apart. Activity counters live in the callers.
 */
template <UopKind K>
void
Tile::opFn(Tile &t, const MicroOp &uop)
{
    auto &r = t.regs_;

    if constexpr (K == UopKind::Add) {
        r[uop.rd] = r[uop.rs1] + r[uop.rs2];
    } else if constexpr (K == UopKind::Sub) {
        r[uop.rd] = r[uop.rs1] - r[uop.rs2];
    } else if constexpr (K == UopKind::And) {
        r[uop.rd] = r[uop.rs1] & r[uop.rs2];
    } else if constexpr (K == UopKind::Or) {
        r[uop.rd] = r[uop.rs1] | r[uop.rs2];
    } else if constexpr (K == UopKind::Xor) {
        r[uop.rd] = r[uop.rs1] ^ r[uop.rs2];
    } else if constexpr (K == UopKind::Min) {
        r[uop.rd] = uint32_t(std::min(int32_t(r[uop.rs1]),
                                      int32_t(r[uop.rs2])));
    } else if constexpr (K == UopKind::Max) {
        r[uop.rd] = uint32_t(std::max(int32_t(r[uop.rs1]),
                                      int32_t(r[uop.rs2])));
    } else if constexpr (K == UopKind::Lsl) {
        r[uop.rd] = r[uop.rs1] << (r[uop.rs2] & 31);
    } else if constexpr (K == UopKind::Lsr) {
        r[uop.rd] = r[uop.rs1] >> (r[uop.rs2] & 31);
    } else if constexpr (K == UopKind::Asr) {
        r[uop.rd] =
            uint32_t(int32_t(r[uop.rs1]) >> (r[uop.rs2] & 31));
    } else if constexpr (K == UopKind::Mul) {
        r[uop.rd] = uint32_t(int64_t(int32_t(r[uop.rs1])) *
                             int64_t(int32_t(r[uop.rs2])));
    } else if constexpr (K == UopKind::Sel) {
        r[uop.rd] = t.cc_ ? r[uop.rs1] : r[uop.rs2];
    } else if constexpr (K == UopKind::Neg) {
        r[uop.rd] = uint32_t(-int32_t(r[uop.rs1]));
    } else if constexpr (K == UopKind::Not) {
        r[uop.rd] = ~r[uop.rs1];
    } else if constexpr (K == UopKind::Abs) {
        // DSP-style saturating abs: |INT32_MIN| -> INT32_MAX.
        int32_t v = int32_t(r[uop.rs1]);
        r[uop.rd] = v == INT32_MIN ? uint32_t(INT32_MAX)
                                   : uint32_t(v < 0 ? -v : v);
    } else if constexpr (K == UopKind::Mov) {
        r[uop.rd] = r[uop.rs1];
    } else if constexpr (K == UopKind::AddImm) {
        r[uop.rd] += uint32_t(uop.imm);
    } else if constexpr (K == UopKind::LslImm) {
        r[uop.rd] = r[uop.rs1] << uop.imm;
    } else if constexpr (K == UopKind::LsrImm) {
        r[uop.rd] = r[uop.rs1] >> uop.imm;
    } else if constexpr (K == UopKind::AsrImm) {
        r[uop.rd] = uint32_t(int32_t(r[uop.rs1]) >> uop.imm);
    } else if constexpr (K == UopKind::Add16) {
        uint32_t a = r[uop.rs1], b = r[uop.rs2];
        uint32_t lo = uint16_t(sat16(int64_t(half(a, false)) +
                                     half(b, false)));
        uint32_t hi = uint16_t(sat16(int64_t(half(a, true)) +
                                     half(b, true)));
        r[uop.rd] = (hi << 16) | lo;
    } else if constexpr (K == UopKind::Sub16) {
        uint32_t a = r[uop.rs1], b = r[uop.rs2];
        uint32_t lo = uint16_t(sat16(int64_t(half(a, false)) -
                                     half(b, false)));
        uint32_t hi = uint16_t(sat16(int64_t(half(a, true)) -
                                     half(b, true)));
        r[uop.rd] = (hi << 16) | lo;
    } else if constexpr (K == UopKind::Mac) {
        t.accs_[uop.acc] = sat40(
            t.accs_[uop.acc] +
            halfProduct(r[uop.rs1], r[uop.rs2], uop.flags));
    } else if constexpr (K == UopKind::Msu) {
        t.accs_[uop.acc] = sat40(
            t.accs_[uop.acc] -
            halfProduct(r[uop.rs1], r[uop.rs2], uop.flags));
    } else if constexpr (K == UopKind::Saa) {
        // Video-ALU sum of absolute byte differences (4 lanes).
        uint32_t a = r[uop.rs1], b = r[uop.rs2];
        int64_t sum = 0;
        for (unsigned i = 0; i < 4; ++i) {
            int32_t ba = int32_t((a >> (8 * i)) & 0xff);
            int32_t bb = int32_t((b >> (8 * i)) & 0xff);
            sum += ba > bb ? ba - bb : bb - ba;
        }
        t.accs_[uop.acc] = sat40(t.accs_[uop.acc] + sum);
    } else if constexpr (K == UopKind::AClr) {
        t.accs_[uop.acc] = 0;
    } else if constexpr (K == UopKind::AExt) {
        r[uop.rd] = uint32_t(sat32(t.accs_[uop.acc] >> uop.imm));
    } else if constexpr (K == UopKind::MovImm) {
        r[uop.rd] = uint32_t(uop.imm);
    } else if constexpr (K == UopKind::MovImmHigh) {
        r[uop.rd] = (r[uop.rd] & 0xffff) | (uint32_t(uop.imm) << 16);
    } else if constexpr (K == UopKind::MovPtrImm) {
        t.pregs_[uop.rd] = uint32_t(uop.imm);
    } else if constexpr (K == UopKind::MovPtr) {
        t.pregs_[uop.rd] = r[uop.rs1];
    } else if constexpr (K == UopKind::MovFromPtr) {
        r[uop.rd] = t.pregs_[uop.rs1];
    } else if constexpr (K == UopKind::PtrAddImm) {
        t.pregs_[uop.rd] += uint32_t(uop.imm);
    } else if constexpr (K == UopKind::TileId) {
        r[uop.rd] = t.index_;
    } else if constexpr (K == UopKind::Load) {
        r[uop.rd] = t.loadFrom(t.effectiveAddress(uop), uop.mem_size,
                               uop.flags & isa::UopSignExtend);
    } else if constexpr (K == UopKind::Store) {
        t.storeTo(t.effectiveAddress(uop), uop.mem_size, r[uop.rd]);
    } else if constexpr (K == UopKind::CmpEq) {
        t.cc_ = r[uop.rd] == r[uop.rs1];
    } else if constexpr (K == UopKind::CmpLt) {
        t.cc_ = int32_t(r[uop.rd]) < int32_t(r[uop.rs1]);
    } else if constexpr (K == UopKind::CmpLe) {
        t.cc_ = int32_t(r[uop.rd]) <= int32_t(r[uop.rs1]);
    } else if constexpr (K == UopKind::CmpLtu) {
        t.cc_ = r[uop.rd] < r[uop.rs1];
    } else if constexpr (K == UopKind::CommWrite) {
        if (!t.wbuf_.push(r[uop.rd], int(uop.imm)))
            panic("tile (%u,%u): cwr into a full write buffer "
                  "(controller must stall first)",
                  t.column_, t.index_);
    } else if constexpr (K == UopKind::CommRead) {
        if (uop.imm >= 0) {
            CommBuffer &b = t.rbufs_[unsigned(uop.imm)];
            if (!b.valid())
                panic("tile (%u,%u): crd from empty lane-%d read "
                      "buffer (controller must stall first)",
                      t.column_, t.index_, int(uop.imm));
            r[uop.rd] = b.pop();
        } else {
            for (auto &b : t.rbufs_) {
                if (b.valid()) {
                    r[uop.rd] = b.pop();
                    return;
                }
            }
            panic("tile (%u,%u): crd with no valid read buffer "
                  "(controller must stall first)",
                  t.column_, t.index_);
        }
    } else if constexpr (K == UopKind::Nop) {
        (void)t;
        (void)uop;
    } else {
        static_assert(K == UopKind::Nop, "opFn on a control kind");
    }
}

// Every micro-op kind a tile can execute, for stamping out the
// per-kind thunk tables below.
#define SYNC_TILE_EXECUTABLE_KINDS(X) \
    X(Nop) \
    X(Add) \
    X(Sub) \
    X(And) \
    X(Or) \
    X(Xor) \
    X(Min) \
    X(Max) \
    X(Lsl) \
    X(Lsr) \
    X(Asr) \
    X(Mul) \
    X(Sel) \
    X(Neg) \
    X(Not) \
    X(Abs) \
    X(Mov) \
    X(AddImm) \
    X(LslImm) \
    X(LsrImm) \
    X(AsrImm) \
    X(Add16) \
    X(Sub16) \
    X(Mac) \
    X(Msu) \
    X(Saa) \
    X(AClr) \
    X(AExt) \
    X(MovImm) \
    X(MovImmHigh) \
    X(MovPtrImm) \
    X(MovPtr) \
    X(MovFromPtr) \
    X(PtrAddImm) \
    X(TileId) \
    X(Load) \
    X(Store) \
    X(CmpEq) \
    X(CmpLt) \
    X(CmpLe) \
    X(CmpLtu) \
    X(CommWrite) \
    X(CommRead)

template <UopKind K>
void
Tile::opLoopFn(Tile &t, const MicroOp &uop, uint64_t iters)
{
    // One fully-inlined op per iteration: for simple bodies the
    // optimizer reduces this to a closed form or a tight loop with
    // no indirect calls.
    for (uint64_t i = 0; i < iters; ++i)
        opFn<K>(t, uop);
}

Tile::OpFn
Tile::opThunk(UopKind kind)
{
    switch (kind) {
#define X(K)                                                          \
      case UopKind::K:                                                \
        return &opFn<UopKind::K>;
        SYNC_TILE_EXECUTABLE_KINDS(X)
#undef X
      default:
        return nullptr;
    }
}

Tile::OpLoopFn
Tile::opLoopThunk(UopKind kind)
{
    switch (kind) {
#define X(K)                                                          \
      case UopKind::K:                                                \
        return &opLoopFn<UopKind::K>;
        SYNC_TILE_EXECUTABLE_KINDS(X)
#undef X
      default:
        return nullptr;
    }
}

void
Tile::execute(const MicroOp &uop)
{
    ++instructions_;
    switch (uop.kind) {
      case UopKind::Load:
      case UopKind::Store:
        ++mem_ops_;
        break;
      case UopKind::Mac:
      case UopKind::Msu:
      case UopKind::Saa:
        ++mac_ops_;
        break;
      default:
        break;
    }
    OpFn fn = opThunk(uop.kind);
    if (!fn)
        panic("tile (%u,%u): control micro-op %u broadcast to tile",
              column_, index_, unsigned(uop.kind));
    fn(*this, uop);
}

void
Tile::executeBlock(const OpFn *fns, const MicroOp *uops, uint32_t n,
                   uint64_t broadcast, uint64_t mems, uint64_t macs)
{
    instructions_ += broadcast;
    mem_ops_ += mems;
    mac_ops_ += macs;
    for (uint32_t i = 0; i < n; ++i)
        fns[i](*this, uops[i]);
}

void
Tile::executeLoop(const OpFn *fns, const MicroOp *uops, uint32_t n,
                  uint64_t iters, uint64_t broadcast, uint64_t mems,
                  uint64_t macs)
{
    instructions_ += broadcast;
    mem_ops_ += mems;
    mac_ops_ += macs;
    if (n == 1) {
        // Single-op bodies are common (accumulation loops); hoist
        // the dispatch so the branch predictor sees one target.
        const OpFn fn = fns[0];
        const MicroOp &u = uops[0];
        for (uint64_t it = 0; it < iters; ++it)
            fn(*this, u);
        return;
    }
    for (uint64_t it = 0; it < iters; ++it) {
        for (uint32_t i = 0; i < n; ++i)
            fns[i](*this, uops[i]);
    }
}

void
Tile::executeLoopOp(OpLoopFn fn, const MicroOp &uop, uint64_t iters,
                    uint64_t broadcast, uint64_t mems, uint64_t macs)
{
    instructions_ += broadcast;
    mem_ops_ += mems;
    mac_ops_ += macs;
    fn(*this, uop, iters);
}

} // namespace synchro::arch
