/**
 * @file
 * The Synchroscalar chip: a configurable grid of columns sharing one
 * reference PLL and the horizontal inter-column bus (paper Figure 1).
 *
 * Simulation model: one Tick = one reference (bus/DOU) clock period.
 * Every tick, each column's DOU advances one state and the bus fabric
 * resolves transfers; on ticks that are a column's divided clock
 * edges, that column's SIMD controller issues one slot. Event
 * ordering within a tick puts tile execution (priority ClockEdgePri)
 * before bus movement (BusPri), so a value written by `cwr` at tick T
 * can ride the bus at tick T and be read by `crd` at the consumer's
 * next edge — register-to-register communication in one bus cycle,
 * plus the capture alignment the DOU schedules.
 */

#ifndef SYNC_ARCH_CHIP_HH
#define SYNC_ARCH_CHIP_HH

#include <memory>
#include <string>
#include <vector>

#include "arch/bus.hh"
#include "arch/column.hh"
#include "sim/eventq.hh"

namespace synchro::arch
{

struct ChipConfig
{
    /** Reference (maximum / bus / DOU) frequency. */
    double ref_freq_mhz = 600.0;

    /** Per-column integer clock dividers; size = number of columns. */
    std::vector<unsigned> dividers = {1, 1, 1, 1};

    /** Tiles populated per column (1..4). */
    unsigned tiles_per_column = 4;

    /** Structural hazards and schedule slips are fatal when true. */
    bool strict = false;
};

/** Why Chip::run() returned. */
enum class RunExit
{
    AllHalted,  //!< every column executed HALT
    TickLimit,  //!< the tick budget ran out
    Deadlock,   //!< nothing left to do but columns are not halted
};

struct RunResult
{
    RunExit exit;
    Tick ticks; //!< final tick reached
};

class Chip
{
  public:
    explicit Chip(const ChipConfig &cfg);

    unsigned numColumns() const { return unsigned(columns_.size()); }
    Column &column(unsigned c) { return *columns_.at(c); }
    const Column &column(unsigned c) const { return *columns_.at(c); }

    BusFabric &fabric() { return fabric_; }
    const BusFabric &fabric() const { return fabric_; }

    const ChipConfig &config() const { return cfg_; }

    /**
     * Run until all columns halt or @p max_ticks reference cycles
     * elapse. May be called repeatedly (time accumulates).
     */
    RunResult run(Tick max_ticks = 100'000'000);

    bool allHalted() const;

    Tick curTick() const { return eq_.curTick(); }

    /** Reset all columns and rewind nothing else (stats persist). */
    void resetColumns();

  private:
    void busPhase();
    void columnPhase(unsigned c);

    ChipConfig cfg_;
    EventQueue eq_;
    std::vector<std::unique_ptr<Column>> columns_;
    BusFabric fabric_;

    std::vector<std::unique_ptr<LambdaEvent>> column_events_;
    std::unique_ptr<LambdaEvent> bus_event_;
};

} // namespace synchro::arch

#endif // SYNC_ARCH_CHIP_HH
