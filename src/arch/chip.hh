/**
 * @file
 * The Synchroscalar chip: a configurable grid of columns sharing one
 * reference PLL and the horizontal inter-column bus (paper Figure 1).
 *
 * Simulation model: one Tick = one reference (bus/DOU) clock period.
 * Every tick, each column's DOU advances one state and the bus fabric
 * resolves transfers; on ticks that are a column's divided clock
 * edges, that column's SIMD controller issues one slot. Within a tick
 * tile execution runs before bus movement, so a value written by
 * `cwr` at tick T can ride the bus at tick T and be read by `crd` at
 * the consumer's next edge — register-to-register communication in
 * one bus cycle, plus the capture alignment the DOU schedules.
 *
 * The tick loop itself is delegated to a pluggable Scheduler
 * (sim/scheduler.hh). The default FastEdge backend exploits the
 * statically-known edge pattern of the rationally-related column
 * clocks to jump from edge to edge; the EventQueue backend keeps the
 * original gem5-style event loop for bit-identical cross-checking.
 */

#ifndef SYNC_ARCH_CHIP_HH
#define SYNC_ARCH_CHIP_HH

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "arch/bus.hh"
#include "arch/column.hh"
#include "sim/scheduler.hh"

namespace synchro::arch
{

struct ChipConfig
{
    /** Reference (maximum / bus / DOU) frequency. */
    double ref_freq_mhz = 600.0;

    /** Per-column integer clock dividers; size = number of columns. */
    std::vector<unsigned> dividers = {1, 1, 1, 1};

    /**
     * Per-column clock phase offsets in ticks (each < its divider).
     * Empty means every column's first edge is at tick 0.
     */
    std::vector<Tick> phases;

    /** Tiles populated per column (1..4). */
    unsigned tiles_per_column = 4;

    /** Structural hazards and schedule slips are fatal when true. */
    bool strict = false;

    /**
     * Latency-insensitive bus delivery: transfers whose destination
     * read buffer is still full defer (driver keeps the word) instead
     * of overrunning. Required by DAG pipelines, where several edges
     * share a producer's write buffer; see BusFabric.
     */
    bool self_timed_bus = false;

    /** Execution backend driving the tick loop. */
    SchedulerKind scheduler = defaultSchedulerKind();

    /**
     * Column team size for SchedulerKind::ParallelColumns: 0 sizes
     * the team automatically (hardware concurrency clamped to the
     * column count, degrading to serial on a SimSession/fleet pool
     * worker — see inWorkerPool()), 1 forces serial execution, and
     * larger values request that many team threads (clamped to the
     * column count; explicit sizes nest inside pools deliberately).
     * Ignored by the other backends.
     */
    unsigned parallel_columns = 0;
};

/** Why Chip::run() returned. */
enum class RunExit
{
    AllHalted,  //!< every column executed HALT
    TickLimit,  //!< the tick budget ran out
    Deadlock,   //!< nothing left to do but columns are not halted
};

struct RunResult
{
    RunExit exit;
    Tick ticks; //!< final tick reached
};

class Chip : private SchedModel
{
  public:
    explicit Chip(const ChipConfig &cfg);

    unsigned numColumns() const { return unsigned(columns_.size()); }
    Column &column(unsigned c) { return *columns_.at(c); }
    const Column &column(unsigned c) const { return *columns_.at(c); }

    BusFabric &fabric() { return fabric_; }
    const BusFabric &fabric() const { return fabric_; }

    const ChipConfig &config() const { return cfg_; }

    /**
     * Run until all columns halt or @p max_ticks reference cycles
     * elapse. May be called repeatedly (time accumulates).
     */
    RunResult run(Tick max_ticks = 100'000'000);

    bool allHalted() const override;

    Tick curTick() const { return sched_->curTick(); }

    /** The scheduler backend this chip runs on. */
    SchedulerKind schedulerKind() const { return cfg_.scheduler; }

    /**
     * Swap the scheduler backend of a not-yet-run chip — lets a
     * session or explorer override the kind baked into the config at
     * construction (e.g. to mix compiled and FastEdge chips in one
     * pool). fatal() once the chip has advanced past tick 0, since
     * the backends' pending-work state is not transferable.
     */
    void setSchedulerKind(SchedulerKind kind);

    /** Reset all columns and rewind nothing else (stats persist). */
    void resetColumns();

    /**
     * Deep-copy a programmed, not-yet-run chip — the fleet layer's
     * warm start: codegen + program load + decode ran once on the
     * template, and every clone snapshots the resulting state
     * (programs, DOU schedules, ZORM, tile SRAM, supply gating)
     * without re-running any of it. The clone gets fresh statistics
     * (all zero, like a freshly built chip) and its own scheduler,
     * and is bit-identical to a fresh build + load on every backend.
     * fatal() once this chip has advanced past tick 0: run state is
     * not transferable (same invariant as setSchedulerKind()).
     *
     * clone() is const and safe to call concurrently from several
     * worker threads on one template chip.
     */
    std::unique_ptr<Chip> clone() const;

    /** clone(), re-homed onto @p scheduler (mixed-backend fleets). */
    std::unique_ptr<Chip> clone(SchedulerKind scheduler) const;

    /**
     * Rewind a finished chip to tick 0 for its next work item:
     * resets every column (controllers restart their programs, DOUs
     * reload their counters, tile registers and comm buffers clear)
     * and replaces the scheduler so the next run() starts at tick 0
     * with the column clock phases exactly as a fresh chip sees them.
     * Tile SRAM and all statistics persist (counters accumulate
     * across items; the caller rewrites its input images).
     */
    void restart();

    /**
     * True at the statically-safe reconfiguration points where
     * per-column clock retuning is allowed: tick 0 (a fresh or
     * restart()ed chip, where every domain re-arms phase-aligned
     * from the new dividers) or a drained chip (all columns halted
     * — the strongest comm-quiet window: no pending edges matter,
     * no word is in flight, and the next restart() realigns the
     * edge grid from tick 0).
     */
    bool atReconfigPoint() const;

    /**
     * Retune every column's clock divider — the DVFS governor's
     * apply primitive. Only legal at a reconfiguration point
     * (atReconfigPoint(); fatal() otherwise): splicing a new
     * divider vector mid-flight would break the phase-0 edge
     * alignment the static verifier's safety proof assumes. The
     * chip's config is updated too, so clone() of a retuned
     * template reproduces the retuned clocks.
     */
    void retune(const std::vector<unsigned> &dividers);

    /**
     * Visit every statistic of the chip under a dotted hierarchical
     * name: "bus.<stat>", "colC.ctrl.<stat>", "colC.dou.<stat>",
     * "colC.tileT.<stat>". Names are visited in a deterministic
     * order; SimSession aggregates across chips with this.
     */
    void forEachStat(
        const std::function<void(const std::string &, uint64_t)> &fn)
        const;

  private:
    /// @name SchedModel interface (driven by the scheduler)
    /// @{
    unsigned numDomains() const override { return numColumns(); }
    const ClockDomain &domainClock(unsigned d) const override;
    bool domainHalted(unsigned d) const override;
    void domainEdge(unsigned d) override;
    void refPhase() override;
    bool refPhaseInert() const override;
    void skipRefPhases(Tick n) override;
    Tick domainEdgeBlock(unsigned d, Tick max_slots) override;
    Tick commFreeAdvance(Tick max) override;
    Tick commQuiet(Tick max) const override;
    Tick domainStallBlock(unsigned d, Tick max_slots) override;
    bool domainsIndependent() const override;
    void domainRefAdvance(unsigned d, Tick n) override;
    /// @}

    ChipConfig cfg_;
    std::unique_ptr<Scheduler> sched_;
    std::vector<std::unique_ptr<Column>> columns_;
    BusFabric fabric_;

    // Scratch for refPhase(), reused across ticks.
    std::vector<ColumnBusView> views_;
};

} // namespace synchro::arch

#endif // SYNC_ARCH_CHIP_HH
