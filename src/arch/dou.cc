#include "arch/dou.hh"

#include "common/bitfield.hh"
#include "common/log.hh"

namespace synchro::arch
{

uint64_t
DouState::pack() const
{
    // Field order (LSB first): NXT1(7) NXT0(7) BUF3..0(32) SEG3..0(16)
    // CNTR(2) — 64 bits total, matching Figure 3's bit budget.
    uint64_t w = 0;
    unsigned pos = 0;
    w = insertBits(w, pos + 6, pos, nxt1);
    pos += 7;
    w = insertBits(w, pos + 6, pos, nxt0);
    pos += 7;
    for (unsigned t = 0; t < TilesPerColumn; ++t) {
        w = insertBits(w, pos + 7, pos, buf[t]);
        pos += 8;
    }
    for (unsigned s = 0; s < SegPointsPerColumn; ++s) {
        w = insertBits(w, pos + 3, pos, seg[s]);
        pos += 4;
    }
    w = insertBits(w, pos + 1, pos, cntr);
    return w;
}

DouState
DouState::unpack(uint64_t w)
{
    DouState st;
    unsigned pos = 0;
    st.nxt1 = uint8_t(bits(w, pos + 6, pos));
    pos += 7;
    st.nxt0 = uint8_t(bits(w, pos + 6, pos));
    pos += 7;
    for (unsigned t = 0; t < TilesPerColumn; ++t) {
        st.buf[t] = uint8_t(bits(w, pos + 7, pos));
        pos += 8;
    }
    for (unsigned s = 0; s < SegPointsPerColumn; ++s) {
        st.seg[s] = uint8_t(bits(w, pos + 3, pos));
        pos += 4;
    }
    st.cntr = uint8_t(bits(w, pos + 1, pos));
    return st;
}

DouProgram
DouProgram::idle()
{
    DouProgram p;
    p.states.push_back(DouState{}); // all-zero outputs, nxt0=nxt1=0
    return p;
}

void
DouProgram::validate() const
{
    if (states.empty())
        fatal("DOU program has no states");
    if (states.size() > DouMaxStates)
        fatal("DOU program has %zu states; hardware holds %u",
              states.size(), DouMaxStates);
    for (size_t i = 0; i < states.size(); ++i) {
        const DouState &s = states[i];
        if (s.cntr >= DouNumCounters)
            fatal("DOU state %zu: counter %u out of range", i, s.cntr);
        if (s.nxt0 >= states.size() || s.nxt1 >= states.size())
            fatal("DOU state %zu: successor out of range (%u/%u of "
                  "%zu states)",
                  i, s.nxt0, s.nxt1, states.size());
        for (unsigned p = 0; p < SegPointsPerColumn; ++p) {
            if (s.seg[p] > 0xf)
                fatal("DOU state %zu: seg[%u] wider than 4 bits", i, p);
        }
    }
}

Dou::Dou(unsigned column)
    : column_(column), prog_(DouProgram::idle()),
      steps_(stats_.counter("steps"))
{
    reset();
}

void
Dou::load(const DouProgram &prog)
{
    prog.validate();
    prog_ = prog;
    reset();
}

void
Dou::reset()
{
    state_ = 0;
    counters_ = prog_.counter_init;
    cf_run_ = cf_cap_ = 0;
}

void
Dou::copyStateFrom(const Dou &other)
{
    prog_ = other.prog_;
    state_ = other.state_;
    counters_ = other.counters_;
    cf_run_ = cf_cap_ = 0;
    cf_end_state_ = 0;
    cf_end_ctrs_ = {};
}

bool
Dou::inertSelfLoop() const
{
    const DouState &s = prog_.states[state_];
    if (s.nxt0 != state_ || s.nxt1 != state_)
        return false;
    for (uint8_t b : s.buf) {
        if (b != 0)
            return false;
    }
    return true;
}

void
Dou::skipSteps(uint64_t n)
{
    if (n == 0)
        return;
    sync_assert(inertSelfLoop(),
                "DOU %u: skipSteps through a non-inert state %u",
                column_, state_);
    const DouState &s = prog_.states[state_];
    uint32_t &ctr = counters_[s.cntr];
    const uint32_t reload = prog_.counter_init[s.cntr];
    // step() maps v -> (v == 0 ? reload : v - 1); starting from
    // v <= reload the value descends to 0 then cycles with period
    // reload + 1, so n steps land at a closed-form position.
    uint64_t v = ctr;
    if (n <= v) {
        v -= n;
    } else {
        uint64_t period = uint64_t(reload) + 1;
        uint64_t rem = (n - v - 1) % period;
        v = reload - rem;
    }
    ctr = uint32_t(v);
    steps_ += n;
    cf_run_ = cf_cap_ = 0;
}

uint64_t
Dou::walkCommFree(uint64_t max, unsigned &st,
                  std::array<uint32_t, DouNumCounters> &ctrs) const
{
    uint64_t taken = 0;
    while (taken < max) {
        const DouState &s = prog_.states[st];
        bool buf_zero = true;
        for (uint8_t b : s.buf)
            buf_zero = buf_zero && b == 0;
        if (!buf_zero)
            break;

        uint32_t &ctr = ctrs[s.cntr];
        const uint32_t reload = prog_.counter_init[s.cntr];
        const uint64_t rem = max - taken;

        if (s.nxt0 == st && s.nxt1 == st) {
            // Inert self-loop: only the tested counter cycles. Same
            // closed form as skipSteps().
            uint64_t v = ctr;
            if (rem <= v) {
                v -= rem;
            } else {
                uint64_t period = uint64_t(reload) + 1;
                uint64_t r = (rem - v - 1) % period;
                v = reload - r;
            }
            ctr = uint32_t(v);
            taken = max;
            break;
        }
        if (s.nxt1 == st) {
            // Wait state: occupied while the counter decrements
            // (ctr + 1 cycles), then reloads and exits to nxt0.
            uint64_t stay = uint64_t(ctr) + 1;
            if (rem < stay) {
                ctr -= uint32_t(rem);
                taken = max;
                break;
            }
            ctr = reload;
            st = s.nxt0;
            taken += stay;
            continue;
        }
        // Generic comm-free transition: one step() worth of work.
        if (ctr == 0) {
            ctr = reload;
            st = s.nxt0;
        } else {
            --ctr;
            st = s.nxt1;
        }
        ++taken;
    }
    return taken;
}

uint64_t
Dou::commFreeRun(uint64_t max) const
{
    if (cf_cap_ >= max || cf_run_ < cf_cap_)
        return std::min(cf_run_, max);
    unsigned st = state_;
    std::array<uint32_t, DouNumCounters> ctrs = counters_;
    uint64_t taken = walkCommFree(max, st, ctrs);
    cf_run_ = taken;
    cf_cap_ = max;
    cf_end_state_ = st;
    cf_end_ctrs_ = ctrs;
    return taken;
}

void
Dou::fastForwardCommFree(uint64_t n)
{
    if (n == 0)
        return;
    if (n == cf_run_) {
        // Committing exactly the cached run: the probe walk already
        // computed the landing position, install it directly.
        state_ = cf_end_state_;
        counters_ = cf_end_ctrs_;
        steps_ += n;
        cf_run_ = 0;
        cf_cap_ -= std::min(cf_cap_, n);
        return;
    }
    uint64_t taken = walkCommFree(n, state_, counters_);
    sync_assert(taken == n,
                "DOU %u: fastForwardCommFree(%llu) hit an active "
                "state after %llu cycles",
                column_, (unsigned long long)n,
                (unsigned long long)taken);
    steps_ += n;
    cf_run_ -= std::min(cf_run_, n);
    cf_cap_ -= std::min(cf_cap_, n);
}

} // namespace synchro::arch
