/**
 * @file
 * Tile communication buffers (paper Section 2.3, Figure 2).
 *
 * Each tile has one write buffer (tile -> bus) and one read buffer
 * (bus -> tile). Their dual purpose in the paper is (1) crossing from
 * the tile's voltage/clock domain to the bus domain and (2) aligning a
 * word onto the desired 32-bit split of the 256-bit bus; here they are
 * single-entry valid-bit registers moved by the DOU at bus cycles.
 */

#ifndef SYNC_ARCH_COMM_BUFFER_HH
#define SYNC_ARCH_COMM_BUFFER_HH

#include <cstdint>

namespace synchro::arch
{

/** Single-entry buffer with a valid bit. */
class CommBuffer
{
  public:
    bool valid() const { return valid_; }
    uint32_t peek() const { return data_; }

    /**
     * Latch a value; returns false if a value was still pending.
     *
     * Drop-new semantics: a failed push leaves the buffer untouched,
     * so the pending *unread* word survives and the new word is the
     * one lost — matching what a single-entry register with a valid
     * bit does in hardware (the latch enable is gated on !valid).
     */
    bool
    push(uint32_t v)
    {
        if (valid_)
            return false;
        data_ = v;
        valid_ = true;
        return true;
    }

    /** Consume the value (caller checked valid()). */
    uint32_t
    pop()
    {
        valid_ = false;
        return data_;
    }

    void
    clear()
    {
        valid_ = false;
        data_ = 0;
    }

  private:
    uint32_t data_ = 0;
    bool valid_ = false;
};

} // namespace synchro::arch

#endif // SYNC_ARCH_COMM_BUFFER_HH
