/**
 * @file
 * Tile communication buffers (paper Section 2.3, Figure 2).
 *
 * Each tile has one write buffer (tile -> bus) and one read buffer
 * PER BUS LANE (bus -> tile; arch::Tile::readBuffer(lane)). Their
 * dual purpose in the paper is (1) crossing from the tile's
 * voltage/clock domain to the bus domain and (2) aligning a word
 * onto the desired 32-bit split of the 256-bit bus; here they are
 * single-entry valid-bit registers moved by the DOU at bus cycles.
 *
 * ## The tag-matching pop rule (self-timed DAG delivery)
 *
 * With DAG pipelines one producer tile can feed several consumer
 * columns through its single write buffer, each edge on its own
 * 32-bit bus lane. Time-slot order alone cannot bind a buffered word
 * to the right edge — the producer may run ahead or behind the DOU's
 * static schedule — so the word itself carries the binding:
 *
 *  - a lane-tagged `cwr rs, L` latches the word with laneTag() == L;
 *  - a DOU *drive* slot on lane L pops the write buffer ONLY if the
 *    pending word's tag matches L (BusFabric::cycle; a mismatched
 *    slot idles and counts a deferral, and the word waits for its
 *    own lane's next slot);
 *  - the capture side fills the destination tile's per-lane read
 *    buffer readBuffer(L), and a lane-tagged `crd rd, L` drains
 *    exactly that buffer — a join actor's reads wait on each input
 *    edge independently.
 *
 * Untagged words (laneTag() == -1, the legacy linear-pipeline forms)
 * are popped by whichever drive slot comes first, and an untagged
 * `crd` drains the lowest-indexed valid read buffer.
 */

#ifndef SYNC_ARCH_COMM_BUFFER_HH
#define SYNC_ARCH_COMM_BUFFER_HH

#include <cstdint>
#include <type_traits>

namespace synchro::arch
{

/** Single-entry buffer with a valid bit and an optional lane tag. */
class CommBuffer
{
  public:
    bool valid() const { return valid_; }
    uint32_t peek() const { return data_; }

    /**
     * Bus lane the pending word is bound to, or -1 for a lane-
     * agnostic word. A tagged word in a write buffer is only popped
     * by a DOU drive slot on the matching lane (the pop rule in the
     * file header) — the binding that lets one producer feed several
     * DAG edges through one buffer without time-slot misdelivery.
     */
    int laneTag() const { return tag_; }

    /**
     * Latch a value; returns false if a value was still pending.
     *
     * Drop-new semantics: a failed push leaves the buffer untouched,
     * so the pending *unread* word survives and the new word is the
     * one lost — matching what a single-entry register with a valid
     * bit does in hardware (the latch enable is gated on !valid).
     */
    bool
    push(uint32_t v, int lane_tag = -1)
    {
        if (valid_)
            return false;
        data_ = v;
        tag_ = int8_t(lane_tag);
        valid_ = true;
        return true;
    }

    /** Consume the value (caller checked valid()). */
    uint32_t
    pop()
    {
        valid_ = false;
        tag_ = -1;
        return data_;
    }

    void
    clear()
    {
        valid_ = false;
        data_ = 0;
        tag_ = -1;
    }

  private:
    uint32_t data_ = 0;
    int8_t tag_ = -1;
    bool valid_ = false;
};

// Chip::clone() deep-copies tiles (and with them every comm buffer)
// by plain member assignment; the buffer must stay a value type with
// no identity of its own for that snapshot to be exact.
static_assert(std::is_trivially_copyable_v<CommBuffer>,
              "CommBuffer must remain trivially copyable "
              "(Chip::clone snapshots it by assignment)");

} // namespace synchro::arch

#endif // SYNC_ARCH_COMM_BUFFER_HH
