/**
 * @file
 * Tile communication buffers (paper Section 2.3, Figure 2).
 *
 * Each tile has one write buffer (tile -> bus) and one read buffer
 * (bus -> tile). Their dual purpose in the paper is (1) crossing from
 * the tile's voltage/clock domain to the bus domain and (2) aligning a
 * word onto the desired 32-bit split of the 256-bit bus; here they are
 * single-entry valid-bit registers moved by the DOU at bus cycles.
 */

#ifndef SYNC_ARCH_COMM_BUFFER_HH
#define SYNC_ARCH_COMM_BUFFER_HH

#include <cstdint>

namespace synchro::arch
{

/** Single-entry buffer with a valid bit and an optional lane tag. */
class CommBuffer
{
  public:
    bool valid() const { return valid_; }
    uint32_t peek() const { return data_; }

    /**
     * Bus lane the pending word is bound to, or -1 for a lane-
     * agnostic word. A tagged word in a write buffer is only popped
     * by a DOU drive slot on the matching lane — the binding that
     * lets one producer feed several DAG edges through one buffer
     * without time-slot misdelivery.
     */
    int laneTag() const { return tag_; }

    /**
     * Latch a value; returns false if a value was still pending.
     *
     * Drop-new semantics: a failed push leaves the buffer untouched,
     * so the pending *unread* word survives and the new word is the
     * one lost — matching what a single-entry register with a valid
     * bit does in hardware (the latch enable is gated on !valid).
     */
    bool
    push(uint32_t v, int lane_tag = -1)
    {
        if (valid_)
            return false;
        data_ = v;
        tag_ = int8_t(lane_tag);
        valid_ = true;
        return true;
    }

    /** Consume the value (caller checked valid()). */
    uint32_t
    pop()
    {
        valid_ = false;
        tag_ = -1;
        return data_;
    }

    void
    clear()
    {
        valid_ = false;
        data_ = 0;
        tag_ = -1;
    }

  private:
    uint32_t data_ = 0;
    int8_t tag_ = -1;
    bool valid_ = false;
};

} // namespace synchro::arch

#endif // SYNC_ARCH_COMM_BUFFER_HH
