#include "arch/simd_controller.hh"

#include <algorithm>

#include "common/log.hh"

namespace synchro::arch
{

using isa::MicroOp;
using isa::UopKind;

SimdController::SimdController(unsigned column)
    : column_(column), issued_(stats_.counter("issued")),
      zorm_nops_issued_(stats_.counter("zormNops")),
      branch_stalls_(stats_.counter("branchStalls")),
      comm_stalls_(stats_.counter("commStalls")),
      halt_cycles_(stats_.counter("haltCycles"))
{
}

void
SimdController::loadProgram(const isa::Program &prog)
{
    if (prog.insts.size() > InsnMemWords)
        fatal("column %u: program of %zu insts exceeds %u-word "
              "instruction SRAM",
              column_, prog.insts.size(), InsnMemWords);
    if (prog.insts.empty())
        fatal("column %u: empty program", column_);
    prog_ = isa::decodeProgram(prog);
    fns_.clear();
    fns_.reserve(prog_->uops.size());
    loop_fns_.clear();
    loop_fns_.reserve(prog_->uops.size());
    for (const MicroOp &u : prog_->uops) {
        fns_.push_back(Tile::opThunk(u.kind));
        loop_fns_.push_back(Tile::opLoopThunk(u.kind));
    }
    reset();
}

void
SimdController::reset()
{
    pc_ = 0;
    halted_ = !prog_ || prog_->uops.empty();
    stall_ = 0;
    loops_[0] = loops_[1] = LoopUnit{};
    loop_stack_.clear();
    zorm_acc_ = 0;
}

void
SimdController::copyStateFrom(const SimdController &other)
{
    prog_ = other.prog_;
    fns_ = other.fns_;
    loop_fns_ = other.loop_fns_;
    pc_ = other.pc_;
    halted_ = other.halted_;
    stall_ = other.stall_;
    loops_[0] = other.loops_[0];
    loops_[1] = other.loops_[1];
    loop_stack_ = other.loop_stack_;
    zorm_nops_ = other.zorm_nops_;
    zorm_period_ = other.zorm_period_;
    zorm_acc_ = other.zorm_acc_;
    cc_mode_ = other.cc_mode_;
}

void
SimdController::setRateMatch(uint32_t nops, uint32_t period)
{
    if (period == 0 && nops != 0)
        fatal("column %u: rate match with zero period", column_);
    if (period != 0 && nops >= period)
        fatal("column %u: rate match nops %u must be < period %u",
              column_, nops, period);
    zorm_nops_ = nops;
    zorm_period_ = period;
    zorm_acc_ = 0;
}

bool
SimdController::readCc(const std::vector<Tile *> &tiles) const
{
    sync_assert(!tiles.empty(), "column %u has no active tiles",
                column_);
    switch (cc_mode_) {
      case CcMode::Tile0:
        return tiles.front()->cc();
      case CcMode::Any:
        return std::any_of(tiles.begin(), tiles.end(),
                           [](Tile *t) { return t->cc(); });
      case CcMode::All:
        return std::all_of(tiles.begin(), tiles.end(),
                           [](Tile *t) { return t->cc(); });
    }
    return false;
}

void
SimdController::advancePc()
{
    uint32_t next = pc_ + 1;
    // Zero-overhead loop-back: handled entirely by PC comparison, so
    // it costs no cycles (paper Section 2.2). Units sharing an end
    // address unwind innermost-first.
    while (!loop_stack_.empty()) {
        LoopUnit &u = loops_[loop_stack_.back()];
        if (u.end != next)
            break;
        if (--u.remaining > 0) {
            next = u.start;
            break;
        }
        loop_stack_.pop_back();
    }
    pc_ = next;
}

void
SimdController::cycle(const std::vector<Tile *> &tiles)
{
    if (halted_) {
        ++halt_cycles_;
        return;
    }

    if (stall_ > 0) {
        --stall_;
        ++branch_stalls_;
        return;
    }

    // Zero Overhead Rate Matching: evenly distribute zorm_nops_ nop
    // slots over every zorm_period_ issue slots (Bresenham pacing).
    if (zorm_period_ != 0) {
        zorm_acc_ += zorm_nops_;
        if (zorm_acc_ >= zorm_period_) {
            zorm_acc_ -= zorm_period_;
            ++zorm_nops_issued_;
            return;
        }
    }

    if (pc_ >= prog_->uops.size())
        fatal("column %u: pc %u fell off the program end (missing "
              "halt?)",
              column_, pc_);

    const MicroOp &uop = prog_->uops[pc_];

    if (uop.isControl()) {
        ++issued_;
        switch (uop.kind) {
          case UopKind::Nop:
            advancePc();
            break;
          case UopKind::Halt:
            halted_ = true;
            break;
          case UopKind::Jump:
            pc_ = uint32_t(uop.imm);
            break;
          case UopKind::Jcc:
          case UopKind::Jncc: {
            bool cc = readCc(tiles);
            bool taken = uop.kind == UopKind::Jcc ? cc : !cc;
            if (taken)
                pc_ = uint32_t(uop.imm);
            else
                advancePc();
            stall_ = 1; // single-cycle conditional-branch stall
            break;
          }
          case UopKind::Lsetup: {
            if (uop.end <= pc_ + 1)
                fatal("column %u: lsetup at %u with empty body "
                      "(end %u)",
                      column_, pc_, uop.end);
            if (uop.end > prog_->uops.size())
                fatal("column %u: lsetup end %u beyond program",
                      column_, uop.end);
            uint8_t lc = uop.acc; // loop unit index
            for (uint8_t active : loop_stack_) {
                if (active == lc)
                    fatal("column %u: lc%u re-armed while active",
                          column_, lc);
            }
            loops_[lc] = LoopUnit{pc_ + 1, uop.end, uint32_t(uop.imm)};
            loop_stack_.push_back(lc);
            advancePc();
            break;
          }
          default:
            panic("column %u: unhandled control micro-op %u", column_,
                  unsigned(uop.kind));
        }
        return;
    }

    // Communication hazard checks: the whole column stalls until every
    // active tile can complete the operation (these stall cycles are
    // the cross-domain synchronization nops of paper Section 4.5).
    if (uop.kind == UopKind::CommRead) {
        for (Tile *t : tiles) {
            // Tagged reads wait for their specific lane buffer — the
            // join-side handshake; untagged reads wait for any lane.
            bool ready = uop.imm >= 0
                             ? t->readBuffer(unsigned(uop.imm)).valid()
                             : t->anyReadValid();
            if (!ready) {
                ++comm_stalls_;
                return;
            }
        }
    } else if (uop.kind == UopKind::CommWrite) {
        for (Tile *t : tiles) {
            if (t->writeBuffer().valid()) {
                ++comm_stalls_;
                return;
            }
        }
    }

    ++issued_;
    for (Tile *t : tiles)
        t->execute(uop);
    advancePc();
}

void
SimdController::zormWindow(uint64_t want_issues, Tick avail,
                           uint64_t &issues, uint64_t &nops)
{
    const uint64_t acc0 = zorm_acc_;
    const uint64_t rate = zorm_nops_;
    const uint64_t period = zorm_period_;

    // Per slot the Bresenham rule is: acc += rate; nop if acc >=
    // period (then acc -= period), else issue. acc stays in
    // [0, period), so after S slots exactly
    //   Z(S) = (acc0 + S * rate) / period
    // slots were nops and issues(S) = S - Z(S). issues(S) is
    // monotone, so the least S with issues(S) == want_issues is the
    // least fixed point of S = want_issues + Z(S), reached by
    // iterating from below.
    uint64_t S = want_issues;
    while (true) {
        uint64_t next = want_issues + (acc0 + S * rate) / period;
        if (next == S)
            break;
        S = next;
    }
    if (S > uint64_t(avail))
        S = uint64_t(avail);
    uint64_t Z = (acc0 + S * rate) / period;
    issues = S - Z;
    nops = Z;
    zorm_acc_ = uint32_t(acc0 + S * rate - Z * period);
}

Tick
SimdController::cycleBlock(const std::vector<Tile *> &tiles,
                           Tick max_slots)
{
    if (halted_ || stall_ > 0 || !prog_)
        return 0;

    const auto &run_len = prog_->run_len;
    const size_t psize = prog_->uops.size();
    Tick slots = 0;

    while (slots < max_slots && pc_ < psize && run_len[pc_] != 0) {
        const uint64_t run = run_len[pc_];
        const Tick avail = max_slots - slots;

        // Whole-loop batching: at the start of the innermost active
        // zero-overhead loop whose entire body is one straight run,
        // execute complete firings in bulk — the steady-state case
        // the backend exists for. Partial windows (avail smaller
        // than one body) fall through to the per-run path below.
        if (!loop_stack_.empty()) {
            LoopUnit &u = loops_[loop_stack_.back()];
            const uint64_t body = u.end - u.start;
            if (u.start == pc_ && run == body) {
                uint64_t iters, nops2 = 0, consumed;
                if (zorm_period_ != 0) {
                    // Issue capacity of the whole window, rounded
                    // down to complete firings.
                    const uint64_t acc0 = zorm_acc_;
                    const uint64_t rate = zorm_nops_;
                    const uint64_t period = zorm_period_;
                    const uint64_t cap =
                        uint64_t(avail) -
                        (acc0 + uint64_t(avail) * rate) / period;
                    iters = std::min<uint64_t>(u.remaining,
                                               cap / body);
                    if (iters == 0)
                        goto per_run;
                    uint64_t issues2;
                    zormWindow(iters * body, avail, issues2, nops2);
                    sync_assert(issues2 == iters * body,
                                "column %u: zorm window %llu != "
                                "%llu firings of %llu",
                                column_,
                                (unsigned long long)issues2,
                                (unsigned long long)iters,
                                (unsigned long long)body);
                    consumed = issues2 + nops2;
                } else {
                    iters = std::min<uint64_t>(u.remaining,
                                               uint64_t(avail) / body);
                    if (iters == 0)
                        goto per_run;
                    consumed = iters * body;
                }

                const MicroOp *uops = prog_->uops.data() + u.start;
                const Tile::OpFn *fns = fns_.data() + u.start;
                const uint64_t ctrl_nops =
                    prog_->nop_prefix[u.end] - prog_->nop_prefix[u.start];
                const uint64_t mems =
                    prog_->mem_prefix[u.end] - prog_->mem_prefix[u.start];
                const uint64_t macs =
                    prog_->mac_prefix[u.end] - prog_->mac_prefix[u.start];
                if (body == 1) {
                    const Tile::OpLoopFn lf = loop_fns_[u.start];
                    for (Tile *t : tiles) {
                        t->executeLoopOp(lf, uops[0], iters,
                                         iters * (1 - ctrl_nops),
                                         iters * mems, iters * macs);
                    }
                } else {
                    for (Tile *t : tiles) {
                        t->executeLoop(fns, uops, uint32_t(body),
                                       iters,
                                       iters * (body - ctrl_nops),
                                       iters * mems, iters * macs);
                    }
                }
                issued_ += iters * body;
                zorm_nops_issued_ += nops2;
                slots += Tick(consumed);

                // Equivalent loop-state update: iters - 1 loop-backs
                // already taken, then the final firing's advance
                // (which pops the unit — and unwinds any outer unit
                // sharing the end address — when it was the last).
                u.remaining -= uint32_t(iters) - 1;
                pc_ = u.end - 1;
                advancePc();
                continue;
            }
        }
    per_run:

        uint64_t issues, nops;
        if (zorm_period_ != 0) {
            zormWindow(run, avail, issues, nops);
        } else {
            issues = std::min<uint64_t>(run, uint64_t(avail));
            nops = 0;
        }
        if (issues == 0) {
            // The whole window is rate-match nops.
            zorm_nops_issued_ += nops;
            slots += Tick(nops);
            break;
        }

        const MicroOp *uops = prog_->uops.data() + pc_;
        const Tile::OpFn *fns = fns_.data() + pc_;
        const uint64_t ctrl_nops =
            prog_->nop_prefix[pc_ + issues] - prog_->nop_prefix[pc_];
        const uint64_t mems =
            prog_->mem_prefix[pc_ + issues] - prog_->mem_prefix[pc_];
        const uint64_t macs =
            prog_->mac_prefix[pc_ + issues] - prog_->mac_prefix[pc_];
        for (Tile *t : tiles) {
            t->executeBlock(fns, uops, uint32_t(issues),
                            issues - ctrl_nops, mems, macs);
        }
        issued_ += issues;
        zorm_nops_issued_ += nops;
        slots += Tick(issues + nops);

        if (issues == run) {
            // Interior addresses of a run are never loop ends, so
            // only the final advance needs the zero-overhead-loop
            // check (which may wrap pc back into a firing loop).
            pc_ += uint32_t(issues) - 1;
            advancePc();
        } else {
            pc_ += uint32_t(issues);
        }
    }
    return slots;
}

Tick
SimdController::stallBlock(const std::vector<Tile *> &tiles,
                           Tick max_slots)
{
    if (halted_ || stall_ > 0 || !prog_ || max_slots == 0)
        return 0;
    if (pc_ >= prog_->uops.size())
        return 0;

    // The next slot must be a ZORM nop or a stalled comm op; a ZORM
    // nop slot defers the hazard check, so only the op kind decides.
    const MicroOp &uop = prog_->uops[pc_];
    bool stalled = false;
    if (uop.kind == UopKind::CommRead) {
        for (Tile *t : tiles) {
            bool ready = uop.imm >= 0
                             ? t->readBuffer(unsigned(uop.imm)).valid()
                             : t->anyReadValid();
            if (!ready) {
                stalled = true;
                break;
            }
        }
    } else if (uop.kind == UopKind::CommWrite) {
        for (Tile *t : tiles) {
            if (t->writeBuffer().valid()) {
                stalled = true;
                break;
            }
        }
    }
    if (!stalled)
        return 0;

    // Per slot the per-slot path takes either the ZORM-nop branch or
    // the comm-stall branch; over S slots that is Z(S) paced nops and
    // S - Z(S) stall cycles, with the accumulator advanced as S
    // Bresenham steps.
    if (zorm_period_ != 0) {
        const uint64_t acc0 = zorm_acc_;
        const uint64_t S = uint64_t(max_slots);
        const uint64_t Z = (acc0 + S * zorm_nops_) / zorm_period_;
        zorm_acc_ = uint32_t(acc0 + S * zorm_nops_ - Z * zorm_period_);
        zorm_nops_issued_ += Z;
        comm_stalls_ += S - Z;
    } else {
        comm_stalls_ += uint64_t(max_slots);
    }
    return max_slots;
}

} // namespace synchro::arch
