#include "arch/simd_controller.hh"

#include <algorithm>

#include "common/log.hh"

namespace synchro::arch
{

using isa::MicroOp;
using isa::UopKind;

SimdController::SimdController(unsigned column)
    : column_(column), issued_(stats_.counter("issued")),
      zorm_nops_issued_(stats_.counter("zormNops")),
      branch_stalls_(stats_.counter("branchStalls")),
      comm_stalls_(stats_.counter("commStalls")),
      halt_cycles_(stats_.counter("haltCycles"))
{
}

void
SimdController::loadProgram(const isa::Program &prog)
{
    if (prog.insts.size() > InsnMemWords)
        fatal("column %u: program of %zu insts exceeds %u-word "
              "instruction SRAM",
              column_, prog.insts.size(), InsnMemWords);
    if (prog.insts.empty())
        fatal("column %u: empty program", column_);
    prog_ = isa::decodeProgram(prog);
    reset();
}

void
SimdController::reset()
{
    pc_ = 0;
    halted_ = !prog_ || prog_->uops.empty();
    stall_ = 0;
    loops_[0] = loops_[1] = LoopUnit{};
    loop_stack_.clear();
    zorm_acc_ = 0;
}

void
SimdController::setRateMatch(uint32_t nops, uint32_t period)
{
    if (period == 0 && nops != 0)
        fatal("column %u: rate match with zero period", column_);
    if (period != 0 && nops >= period)
        fatal("column %u: rate match nops %u must be < period %u",
              column_, nops, period);
    zorm_nops_ = nops;
    zorm_period_ = period;
    zorm_acc_ = 0;
}

bool
SimdController::readCc(const std::vector<Tile *> &tiles) const
{
    sync_assert(!tiles.empty(), "column %u has no active tiles",
                column_);
    switch (cc_mode_) {
      case CcMode::Tile0:
        return tiles.front()->cc();
      case CcMode::Any:
        return std::any_of(tiles.begin(), tiles.end(),
                           [](Tile *t) { return t->cc(); });
      case CcMode::All:
        return std::all_of(tiles.begin(), tiles.end(),
                           [](Tile *t) { return t->cc(); });
    }
    return false;
}

void
SimdController::advancePc()
{
    uint32_t next = pc_ + 1;
    // Zero-overhead loop-back: handled entirely by PC comparison, so
    // it costs no cycles (paper Section 2.2). Units sharing an end
    // address unwind innermost-first.
    while (!loop_stack_.empty()) {
        LoopUnit &u = loops_[loop_stack_.back()];
        if (u.end != next)
            break;
        if (--u.remaining > 0) {
            next = u.start;
            break;
        }
        loop_stack_.pop_back();
    }
    pc_ = next;
}

void
SimdController::cycle(const std::vector<Tile *> &tiles)
{
    if (halted_) {
        ++halt_cycles_;
        return;
    }

    if (stall_ > 0) {
        --stall_;
        ++branch_stalls_;
        return;
    }

    // Zero Overhead Rate Matching: evenly distribute zorm_nops_ nop
    // slots over every zorm_period_ issue slots (Bresenham pacing).
    if (zorm_period_ != 0) {
        zorm_acc_ += zorm_nops_;
        if (zorm_acc_ >= zorm_period_) {
            zorm_acc_ -= zorm_period_;
            ++zorm_nops_issued_;
            return;
        }
    }

    if (pc_ >= prog_->uops.size())
        fatal("column %u: pc %u fell off the program end (missing "
              "halt?)",
              column_, pc_);

    const MicroOp &uop = prog_->uops[pc_];

    if (uop.isControl()) {
        ++issued_;
        switch (uop.kind) {
          case UopKind::Nop:
            advancePc();
            break;
          case UopKind::Halt:
            halted_ = true;
            break;
          case UopKind::Jump:
            pc_ = uint32_t(uop.imm);
            break;
          case UopKind::Jcc:
          case UopKind::Jncc: {
            bool cc = readCc(tiles);
            bool taken = uop.kind == UopKind::Jcc ? cc : !cc;
            if (taken)
                pc_ = uint32_t(uop.imm);
            else
                advancePc();
            stall_ = 1; // single-cycle conditional-branch stall
            break;
          }
          case UopKind::Lsetup: {
            if (uop.end <= pc_ + 1)
                fatal("column %u: lsetup at %u with empty body "
                      "(end %u)",
                      column_, pc_, uop.end);
            if (uop.end > prog_->uops.size())
                fatal("column %u: lsetup end %u beyond program",
                      column_, uop.end);
            uint8_t lc = uop.acc; // loop unit index
            for (uint8_t active : loop_stack_) {
                if (active == lc)
                    fatal("column %u: lc%u re-armed while active",
                          column_, lc);
            }
            loops_[lc] = LoopUnit{pc_ + 1, uop.end, uint32_t(uop.imm)};
            loop_stack_.push_back(lc);
            advancePc();
            break;
          }
          default:
            panic("column %u: unhandled control micro-op %u", column_,
                  unsigned(uop.kind));
        }
        return;
    }

    // Communication hazard checks: the whole column stalls until every
    // active tile can complete the operation (these stall cycles are
    // the cross-domain synchronization nops of paper Section 4.5).
    if (uop.kind == UopKind::CommRead) {
        for (Tile *t : tiles) {
            // Tagged reads wait for their specific lane buffer — the
            // join-side handshake; untagged reads wait for any lane.
            bool ready = uop.imm >= 0
                             ? t->readBuffer(unsigned(uop.imm)).valid()
                             : t->anyReadValid();
            if (!ready) {
                ++comm_stalls_;
                return;
            }
        }
    } else if (uop.kind == UopKind::CommWrite) {
        for (Tile *t : tiles) {
            if (t->writeBuffer().valid()) {
                ++comm_stalls_;
                return;
            }
        }
    }

    ++issued_;
    for (Tile *t : tiles)
        t->execute(uop);
    advancePc();
}

} // namespace synchro::arch
