#include "arch/bus.hh"

#include "common/log.hh"

namespace synchro::arch
{

BusFabric::BusFabric(unsigned n_columns, bool strict,
                     bool self_timed)
    : n_columns_(n_columns), strict_(strict),
      self_timed_(self_timed),
      transfers_(stats_.counter("transfers")),
      captures_(stats_.counter("captures")),
      conflicts_(stats_.counter("conflicts")),
      underruns_(stats_.counter("underruns")),
      overruns_(stats_.counter("overruns")),
      deferrals_(stats_.counter("deferrals")),
      wire_span_(stats_.counter("wireSpanSum"))
{
}

int
BusFabric::find(int x)
{
    while (parent_[x] != x) {
        parent_[x] = parent_[parent_[x]];
        x = parent_[x];
    }
    return x;
}

void
BusFabric::unite(int a, int b)
{
    a = find(a);
    b = find(b);
    if (a != b)
        parent_[b] = a;
}

void
BusFabric::buildPlan(const std::vector<ColumnBusView> &views,
                     CyclePlan &plan)
{
    // Only lanes with at least one scheduled drive do anything — a
    // lane whose gather pass finds no driver performs no bookkeeping
    // in cycle() (`any_activity`), so restricting the plan to driven
    // lanes is bit-identical. Transfers are sparse (typically one or
    // two lanes per active cycle of eight).
    uint32_t drive_lanes = 0;
    for (unsigned c = 0; c < n_columns_; ++c) {
        const DouState *st = views[c].state;
        if (!st)
            continue;
        for (unsigned t = 0; t < TilesPerColumn; ++t) {
            if (st->buf[t] == 0)
                continue;
            BufferCtl ctl = BufferCtl::fromByte(st->buf[t]);
            if (ctl.drive)
                drive_lanes |= 1u << ctl.drive_lane;
        }
    }
    if (drive_lanes == 0)
        return;

    // Node numbering per lane: column c tile position t -> c*4 + t;
    // the horizontal bus is node n_columns*4.
    const int n_nodes = int(n_columns_) * 4 + 1;
    const int h_node = int(n_columns_) * 4;

    for (unsigned lane = 0; lane < BusLanes; ++lane) {
        if (!(drive_lanes & (1u << lane)))
            continue;
        unsigned pair_bit = lane / 2;

        // Build connectivity for this lane.
        parent_.resize(n_nodes);
        for (int i = 0; i < n_nodes; ++i)
            parent_[i] = i;
        for (unsigned c = 0; c < n_columns_; ++c) {
            const DouState *st = views[c].state;
            if (!st)
                continue;
            for (unsigned k = 0; k < 3; ++k) {
                if (st->seg[k] & (1u << pair_bit))
                    unite(int(c * 4 + k), int(c * 4 + k + 1));
            }
            if (st->seg[3] & (1u << pair_bit))
                unite(int(c * 4), h_node);
        }

        LanePlan lp;
        lp.lane = uint8_t(lane);

        // Dense group ids for the segment groups this lane's slots
        // touch (drivers and captures both — a capture in a driverless
        // group still needs a group to look up for underrun checks).
        std::vector<int> group_of(n_nodes, -1);
        auto groupId = [&](int root) {
            if (group_of[root] < 0) {
                group_of[root] = int(lp.group_nodes.size());
                lp.group_nodes.push_back(0);
            }
            return uint16_t(group_of[root]);
        };

        for (unsigned c = 0; c < n_columns_; ++c) {
            const DouState *st = views[c].state;
            if (!st)
                continue;
            for (unsigned t = 0; t < TilesPerColumn; ++t) {
                if (st->buf[t] == 0)
                    continue;
                BufferCtl ctl = BufferCtl::fromByte(st->buf[t]);
                LanePlan::Slot s;
                s.col = uint8_t(c);
                s.tile = uint8_t(t);
                if (ctl.drive && ctl.drive_lane == lane) {
                    s.group = groupId(find(int(c * 4 + t)));
                    lp.drivers.push_back(s);
                }
                if (ctl.capture && ctl.capture_lane == lane) {
                    s.group = groupId(find(int(c * 4 + t)));
                    lp.captures.push_back(s);
                }
            }
        }

        // Wire-span accounting input: nodes per referenced group.
        for (int i = 0; i < n_nodes; ++i) {
            int g = group_of[find(i)];
            if (g >= 0)
                ++lp.group_nodes[g];
        }

        plan.push_back(std::move(lp));
    }
}

const BusFabric::CyclePlan &
BusFabric::lookupPlan(const std::vector<ColumnBusView> &views)
{
    plan_key_.resize(n_columns_);
    for (unsigned c = 0; c < n_columns_; ++c) {
        const DouState *st = views[c].state;
        uint64_t w = 0;
        if (st) {
            for (unsigned t = 0; t < TilesPerColumn; ++t)
                w = (w << 8) | st->buf[t];
            for (unsigned s = 0; s < SegPointsPerColumn; ++s)
                w = (w << 4) | (st->seg[s] & 0xf);
        }
        plan_key_[c] = w;
    }
    auto it = plan_cache_.find(plan_key_);
    if (it != plan_cache_.end())
        return it->second;
    // Static schedules revisit a handful of combinations; a
    // branch-heavy program could keep minting new ones, so bound the
    // cache rather than grow without limit.
    if (plan_cache_.size() >= 4096)
        plan_cache_.clear();
    CyclePlan &plan = plan_cache_[plan_key_];
    buildPlan(views, plan);
    return plan;
}

void
BusFabric::cycle(std::vector<ColumnBusView> &views)
{
    sync_assert(views.size() == n_columns_,
                "bus cycle expects %u column views, got %zu",
                n_columns_, views.size());

    // Fast path: on most cycles no DOU drives or captures anything
    // (statically scheduled transfers are sparse), and segment
    // switches without endpoints move no data — skip the per-lane
    // resolution entirely. Bit-identical: with every buffer-control
    // byte zero the full scan below counts and delivers nothing.
    bool any_buf = false;
    for (unsigned c = 0; c < n_columns_ && !any_buf; ++c) {
        const DouState *st = views[c].state;
        if (!st)
            continue;
        for (unsigned t = 0; t < TilesPerColumn; ++t) {
            if (st->buf[t] != 0) {
                any_buf = true;
                break;
            }
        }
    }
    if (!any_buf)
        return;

    const CyclePlan &plan = lookupPlan(views);

    for (const LanePlan &lp : plan) {
        const unsigned lane = lp.lane;
        const int n_groups = int(lp.group_nodes.size());

        // Gather candidate drivers (peek only: whether the word
        // actually leaves the write buffer is decided below, once
        // the capture side of its group is known).
        group_driver_.assign(n_groups, Driver{});
        bool any_activity = false;
        for (const LanePlan::Slot &s : lp.drivers) {
            if (s.tile >= views[s.col].tiles.size())
                continue;
            Tile *tile = views[s.col].tiles[s.tile];
            if (!tile)
                continue;
            any_activity = true;
            if (!tile->writeBuffer().valid()) {
                ++underruns_;
                if (strict_ && !self_timed_)
                    fatal("bus: tile (%u,%u) scheduled to drive "
                          "lane %u with empty write buffer",
                          s.col, s.tile, lane);
                continue;
            }
            int wtag = tile->writeBuffer().laneTag();
            if (wtag >= 0 && unsigned(wtag) != lane) {
                // The pending word belongs to another edge's
                // lane; this slot idles and the word waits for
                // its own slot.
                ++deferrals_;
                continue;
            }
            Driver &d = group_driver_[s.group];
            if (d.present) {
                ++conflicts_;
                d.conflicted = true;
                if (strict_)
                    fatal("bus: structural hazard on lane %u — "
                          "two drivers in one segment group",
                          lane);
                // Non-strict: first driver wins; the late write
                // buffer still drains (the electrical fight is
                // what the conflict counter records).
                tile->writeBuffer().pop();
                continue;
            }
            d.present = true;
            d.value = tile->writeBuffer().peek();
            d.src_node = int(s.col) * 4 + s.tile;
            d.src_tile = tile;
        }

        if (!any_activity)
            continue;

        // Self-timed: a transfer delivers only when every scheduled
        // capture in its group can accept the word; otherwise the
        // whole group defers and the driver keeps it for the next
        // slot (Section 2.3's buffers double as the handshake).
        group_deferred_.assign(n_groups, 0);
        if (self_timed_) {
            for (const LanePlan::Slot &s : lp.captures) {
                if (s.tile >= views[s.col].tiles.size())
                    continue;
                Tile *tile = views[s.col].tiles[s.tile];
                if (!tile)
                    continue;
                if (group_driver_[s.group].present &&
                    tile->readBuffer(lane).valid())
                    group_deferred_[s.group] = 1;
            }
        }

        // Commit drivers: pop delivered words (crediting their wire
        // span), defer held ones.
        for (int g = 0; g < n_groups; ++g) {
            Driver &d = group_driver_[g];
            if (!d.present)
                continue;
            if (group_deferred_[g]) {
                d.present = false;
                ++deferrals_;
                continue;
            }
            d.src_tile->writeBuffer().pop();
            ++transfers_;
            wire_span_ += lp.group_nodes[g];
        }

        // Deliver captures into the per-lane read buffers.
        for (const LanePlan::Slot &s : lp.captures) {
            if (s.tile >= views[s.col].tiles.size())
                continue;
            Tile *tile = views[s.col].tiles[s.tile];
            if (!tile)
                continue;
            const Driver &d = group_driver_[s.group];
            if (!d.present) {
                if (group_deferred_[s.group])
                    continue; // deferral already counted
                ++underruns_;
                if (strict_ && !self_timed_)
                    fatal("bus: tile (%u,%u) captures lane %u "
                          "but no driver is connected",
                          s.col, s.tile, lane);
                continue;
            }
            if (!tile->readBuffer(lane).push(d.value,
                                             int(lane))) {
                // Drop-new: the pending unread word survives and
                // the word on the bus this cycle is the one lost.
                ++overruns_;
                if (strict_)
                    fatal("bus: tile (%u,%u) read buffer overrun "
                          "on lane %u",
                          s.col, s.tile, lane);
            }
            ++captures_;
        }
    }
}

} // namespace synchro::arch
