#include "arch/bus.hh"

#include "common/log.hh"

namespace synchro::arch
{

BusFabric::BusFabric(unsigned n_columns, bool strict,
                     bool self_timed)
    : n_columns_(n_columns), strict_(strict),
      self_timed_(self_timed),
      transfers_(stats_.counter("transfers")),
      captures_(stats_.counter("captures")),
      conflicts_(stats_.counter("conflicts")),
      underruns_(stats_.counter("underruns")),
      overruns_(stats_.counter("overruns")),
      deferrals_(stats_.counter("deferrals")),
      wire_span_(stats_.counter("wireSpanSum"))
{
}

int
BusFabric::find(int x)
{
    while (parent_[x] != x) {
        parent_[x] = parent_[parent_[x]];
        x = parent_[x];
    }
    return x;
}

void
BusFabric::unite(int a, int b)
{
    a = find(a);
    b = find(b);
    if (a != b)
        parent_[b] = a;
}

void
BusFabric::cycle(std::vector<ColumnBusView> &views)
{
    sync_assert(views.size() == n_columns_,
                "bus cycle expects %u column views, got %zu",
                n_columns_, views.size());

    // Fast path: on most cycles no DOU drives or captures anything
    // (statically scheduled transfers are sparse), and segment
    // switches without endpoints move no data — skip the per-lane
    // resolution entirely. Bit-identical: with every buffer-control
    // byte zero the full scan below counts and delivers nothing.
    bool any_buf = false;
    for (unsigned c = 0; c < n_columns_ && !any_buf; ++c) {
        const DouState *st = views[c].state;
        if (!st)
            continue;
        for (unsigned t = 0; t < TilesPerColumn; ++t) {
            if (st->buf[t] != 0) {
                any_buf = true;
                break;
            }
        }
    }
    if (!any_buf)
        return;

    // Node numbering per lane: column c tile position t -> c*4 + t;
    // the horizontal bus is node n_columns*4.
    const int n_nodes = int(n_columns_) * 4 + 1;
    const int h_node = int(n_columns_) * 4;

    struct Driver
    {
        uint32_t value = 0;
        int src_node = 0;
        Tile *src_tile = nullptr;
        bool present = false;
        bool conflicted = false;
    };

    for (unsigned lane = 0; lane < BusLanes; ++lane) {
        unsigned pair_bit = lane / 2;

        // Build connectivity for this lane.
        parent_.resize(n_nodes);
        for (int i = 0; i < n_nodes; ++i)
            parent_[i] = i;
        bool any_activity = false;
        for (unsigned c = 0; c < n_columns_; ++c) {
            const DouState *st = views[c].state;
            if (!st)
                continue;
            for (unsigned k = 0; k < 3; ++k) {
                if (st->seg[k] & (1u << pair_bit))
                    unite(int(c * 4 + k), int(c * 4 + k + 1));
            }
            if (st->seg[3] & (1u << pair_bit))
                unite(int(c * 4), h_node);
        }

        // Gather candidate drivers (peek only: whether the word
        // actually leaves the write buffer is decided below, once
        // the capture side of its group is known).
        std::vector<Driver> group_driver(n_nodes);
        for (unsigned c = 0; c < n_columns_; ++c) {
            const DouState *st = views[c].state;
            if (!st)
                continue;
            for (unsigned t = 0; t < views[c].tiles.size(); ++t) {
                Tile *tile = views[c].tiles[t];
                if (!tile)
                    continue;
                BufferCtl ctl = BufferCtl::fromByte(st->buf[t]);
                if (!ctl.drive || ctl.drive_lane != lane)
                    continue;
                any_activity = true;
                if (!tile->writeBuffer().valid()) {
                    ++underruns_;
                    if (strict_ && !self_timed_)
                        fatal("bus: tile (%u,%u) scheduled to drive "
                              "lane %u with empty write buffer",
                              c, t, lane);
                    continue;
                }
                int wtag = tile->writeBuffer().laneTag();
                if (wtag >= 0 && unsigned(wtag) != lane) {
                    // The pending word belongs to another edge's
                    // lane; this slot idles and the word waits for
                    // its own slot.
                    ++deferrals_;
                    continue;
                }
                int node = int(c * 4 + t);
                int root = find(node);
                Driver &d = group_driver[root];
                if (d.present) {
                    ++conflicts_;
                    d.conflicted = true;
                    if (strict_)
                        fatal("bus: structural hazard on lane %u — "
                              "two drivers in one segment group",
                              lane);
                    // Non-strict: first driver wins; the late write
                    // buffer still drains (the electrical fight is
                    // what the conflict counter records).
                    tile->writeBuffer().pop();
                    continue;
                }
                d.present = true;
                d.value = tile->writeBuffer().peek();
                d.src_node = node;
                d.src_tile = tile;
            }
        }

        if (!any_activity)
            continue;

        // Self-timed: a transfer delivers only when every scheduled
        // capture in its group can accept the word; otherwise the
        // whole group defers and the driver keeps it for the next
        // slot (Section 2.3's buffers double as the handshake).
        std::vector<char> group_deferred(n_nodes, 0);
        if (self_timed_) {
            for (unsigned c = 0; c < n_columns_; ++c) {
                const DouState *st = views[c].state;
                if (!st)
                    continue;
                for (unsigned t = 0; t < views[c].tiles.size(); ++t) {
                    Tile *tile = views[c].tiles[t];
                    if (!tile)
                        continue;
                    BufferCtl ctl = BufferCtl::fromByte(st->buf[t]);
                    if (!ctl.capture || ctl.capture_lane != lane)
                        continue;
                    int root = find(int(c * 4 + t));
                    if (group_driver[root].present &&
                        tile->readBuffer(lane).valid())
                        group_deferred[root] = 1;
                }
            }
        }

        // Commit drivers: pop delivered words, defer held ones.
        for (int i = 0; i < n_nodes; ++i) {
            Driver &d = group_driver[i];
            if (!d.present)
                continue;
            if (group_deferred[i]) {
                d.present = false;
                ++deferrals_;
                continue;
            }
            d.src_tile->writeBuffer().pop();
            ++transfers_;
        }

        // Wire-span accounting: nodes per driven group.
        std::vector<uint32_t> group_size(n_nodes, 0);
        for (int i = 0; i < n_nodes; ++i)
            ++group_size[find(i)];
        for (int i = 0; i < n_nodes; ++i) {
            if (group_driver[i].present)
                wire_span_ += group_size[i];
        }

        // Deliver captures into the per-lane read buffers.
        for (unsigned c = 0; c < n_columns_; ++c) {
            const DouState *st = views[c].state;
            if (!st)
                continue;
            for (unsigned t = 0; t < views[c].tiles.size(); ++t) {
                Tile *tile = views[c].tiles[t];
                if (!tile)
                    continue;
                BufferCtl ctl = BufferCtl::fromByte(st->buf[t]);
                if (!ctl.capture || ctl.capture_lane != lane)
                    continue;
                int root = find(int(c * 4 + t));
                const Driver &d = group_driver[root];
                if (!d.present) {
                    if (group_deferred[root])
                        continue; // deferral already counted
                    ++underruns_;
                    if (strict_ && !self_timed_)
                        fatal("bus: tile (%u,%u) captures lane %u "
                              "but no driver is connected",
                              c, t, lane);
                    continue;
                }
                if (!tile->readBuffer(lane).push(d.value,
                                                 int(lane))) {
                    // Drop-new: the pending unread word survives and
                    // the word on the bus this cycle is the one lost.
                    ++overruns_;
                    if (strict_)
                        fatal("bus: tile (%u,%u) read buffer overrun "
                              "on lane %u",
                              c, t, lane);
                }
                ++captures_;
            }
        }
    }
}

} // namespace synchro::arch
