#include "power/dvfs.hh"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <limits>
#include <set>

#include "common/log.hh"
#include "mapping/explorer.hh"
#include "power/vf_model.hh"

namespace synchro::power
{

namespace
{

/** The ZORM settings of @p plan aligned with @p prog's columns. */
std::pair<std::vector<unsigned>, std::vector<mapping::ZormSetting>>
planZorms(const mapping::ChipPlan &plan,
          const mapping::PipelineProgram &prog)
{
    std::vector<unsigned> cols;
    std::vector<mapping::ZormSetting> zorms;
    for (const mapping::ColumnProgram &cp : prog.columns) {
        const mapping::ActorPlacement *found = nullptr;
        for (const auto &p : plan.placements) {
            if (p.actor == cp.actor) {
                found = &p;
                break;
            }
        }
        if (!found) {
            fatal("safe-transition table: program column %u runs "
                  "actor '%s' with no placement in the plan",
                  cp.column, cp.actor.c_str());
        }
        cols.push_back(cp.column);
        zorms.push_back(found->zorm);
    }
    return {cols, zorms};
}

/** Accumulate (after - before) counter deltas into @p acc. */
void
addActivityDelta(ActivityReport &acc, const ActivityReport &before,
                 const ActivityReport &after)
{
    for (size_t c = 0; c < acc.columns.size(); ++c) {
        ColumnActivity &a = acc.columns[c];
        const ColumnActivity &b0 = before.columns[c];
        const ColumnActivity &b1 = after.columns[c];
        a.compute_slots += b1.compute_slots - b0.compute_slots;
        a.branch_stalls += b1.branch_stalls - b0.branch_stalls;
        a.comm_stall_slots +=
            b1.comm_stall_slots - b0.comm_stall_slots;
        a.zorm_nops += b1.zorm_nops - b0.zorm_nops;
        a.issue_slots += b1.issue_slots - b0.issue_slots;
    }
    acc.bus_transfers += after.bus_transfers - before.bus_transfers;
    acc.wire_span_sum += after.wire_span_sum - before.wire_span_sum;
}

/** One item's activity delta, standalone. */
ActivityReport
activityDelta(const ActivityReport &before,
              const ActivityReport &after)
{
    ActivityReport d = after;
    for (size_t c = 0; c < d.columns.size(); ++c) {
        ColumnActivity &a = d.columns[c];
        const ColumnActivity &b = before.columns[c];
        a.compute_slots -= b.compute_slots;
        a.branch_stalls -= b.branch_stalls;
        a.comm_stall_slots -= b.comm_stall_slots;
        a.zorm_nops -= b.zorm_nops;
        a.issue_slots -= b.issue_slots;
    }
    d.bus_transfers -= before.bus_transfers;
    d.wire_span_sum -= before.wire_span_sum;
    return d;
}

/** Tick budget for one item served at @p point (slower points drain
 *  proportionally later than the baseline the budget was sized for). */
Tick
itemBudget(Tick tick_limit, const DvfsOperatingPoint &point)
{
    double scaled = double(tick_limit) / point.rate_scale;
    return Tick(std::ceil(scaled)) + tick_limit;
}

uint64_t
busDeferrals(const arch::Chip &chip)
{
    return chip.fabric().stats().value("deferrals");
}

} // namespace

SafeTransitionTable
SafeTransitionTable::build(const mapping::LoweredArtifact &art,
                           const std::vector<double> &rate_scales,
                           const power::SupplyLevels &levels)
{
    std::set<double> scales(rate_scales.begin(), rate_scales.end());
    scales.insert(1.0);

    SafeTransitionTable table;
    for (double s : scales) {
        if (s <= 0 || s > 1.0) {
            ++table.rejected_;
            continue;
        }
        mapping::ChipPlan plan = art.plan;
        bool ok = true;
        for (auto &p : plan.placements) {
            p.f_needed_mhz *= s;
            unsigned d =
                unsigned(plan.ref_freq_mhz / p.f_needed_mhz);
            if (!mapping::refreshPlacement(p, plan.ref_freq_mhz, d,
                                           levels)) {
                ok = false;
                break;
            }
        }
        auto [cols, zorms] =
            ok ? planZorms(plan, art.prog)
               : std::pair<std::vector<unsigned>,
                           std::vector<mapping::ZormSetting>>{};
        if (ok)
            ok = candidateVerifies(art, plan, zorms);
        if (!ok) {
            if (s == 1.0) {
                fatal("safe-transition table: the baseline plan of "
                      "'%s' fails its own static proof",
                      art.name.c_str());
            }
            ++table.rejected_;
            continue;
        }
        DvfsOperatingPoint pt;
        pt.rate_scale = s;
        pt.plan = plan;
        pt.dividers = plan.dividers();
        pt.zorm_columns = cols;
        pt.zorms = zorms;
        table.points_.push_back(std::move(pt));
    }

    std::sort(table.points_.begin(), table.points_.end(),
              [](const DvfsOperatingPoint &a,
                 const DvfsOperatingPoint &b) {
                  return a.rate_scale < b.rate_scale;
              });
    table.baseline_ = table.points_.size() - 1;
    for (size_t i = 0; i < table.points_.size(); ++i) {
        if (table.points_[i].rate_scale == 1.0)
            table.baseline_ = i;
    }
    return table;
}

bool
SafeTransitionTable::candidateVerifies(
    const mapping::LoweredArtifact &art,
    const mapping::ChipPlan &plan,
    const std::vector<mapping::ZormSetting> &zorms)
{
    if (zorms.size() != art.prog.columns.size())
        return false;
    mapping::PipelineProgram prog = art.prog;
    for (size_t i = 0; i < prog.columns.size(); ++i)
        prog.columns[i].zorm = zorms[i];
    mapping::VerifyReport rep = mapping::verifyLowered(
        art.spec, plan, prog, art.iterations_per_sec, art.slack);
    return rep.ok();
}

size_t
SafeTransitionTable::indexOf(
    const std::vector<unsigned> &dividers) const
{
    for (size_t i = 0; i < points_.size(); ++i) {
        if (points_[i].dividers == dividers)
            return i;
    }
    return npos;
}

std::string
SafeTransitionTable::describe() const
{
    std::string out = strprintf(
        "%zu verified operating points (%zu rejected), baseline %zu\n",
        points_.size(), rejected_, baseline_);
    for (size_t i = 0; i < points_.size(); ++i) {
        const DvfsOperatingPoint &pt = points_[i];
        out += strprintf("  [%zu] x%.3f dividers", i, pt.rate_scale);
        for (unsigned d : pt.dividers)
            out += strprintf(" %u", d);
        out += "\n";
    }
    return out;
}

void
applyOperatingPoint(arch::Chip &chip, const DvfsOperatingPoint &point)
{
    chip.retune(point.dividers);
    for (size_t j = 0; j < point.zorms.size(); ++j) {
        chip.column(point.zorm_columns[j])
            .controller()
            .setRateMatch(point.zorms[j].nops,
                          point.zorms[j].period);
    }
}

DvfsGovernor::DvfsGovernor(const SafeTransitionTable &table,
                           double nominal_window_ticks,
                           DvfsGovernorConfig cfg)
    : table_(table), cfg_(cfg),
      nominal_window_ticks_(nominal_window_ticks),
      current_(table.baselineIndex()),
      measured_busy_(table.points().size(), 0),
      max_deferrals_(table.points().size(), 0)
{
    if (table_.points().empty())
        fatal("DvfsGovernor: empty safe-transition table");
    if (nominal_window_ticks_ <= 0)
        fatal("DvfsGovernor: need a positive nominal window, got %g",
              nominal_window_ticks_);
}

void
DvfsGovernor::observe(size_t point, uint64_t busy_ticks,
                      const ActivityReport &delta,
                      uint64_t bus_deferrals)
{
    if (point >= table_.points().size())
        fatal("DvfsGovernor::observe: point %zu out of range", point);
    // Keep the slowest item seen per point: items carry constant
    // work per app, but data-dependent branches wobble slightly, and
    // the governor must never promise a window the worst item can't
    // meet.
    measured_busy_[point] =
        std::max(measured_busy_[point], busy_ticks);
    max_deferrals_[point] =
        std::max(max_deferrals_[point], bus_deferrals);
    if (work_slots_.size() < delta.columns.size())
        work_slots_.resize(delta.columns.size(), 0);
    for (const ColumnActivity &col : delta.columns) {
        // Occupancy feedforward: compute + branch-stall + comm-stall
        // slots are the item's demand on the column; ZORM-idle nops
        // are the current point's own padding and excluded (they are
        // exactly what a retune reclaims).
        uint64_t w = col.compute_slots + col.branch_stalls +
                     col.comm_stall_slots;
        work_slots_[col.column] =
            std::max(work_slots_[col.column], w);
    }
}

uint64_t
DvfsGovernor::predictedBusyTicks(size_t point) const
{
    if (point >= table_.points().size())
        return std::numeric_limits<uint64_t>::max();
    if (measured_busy_[point])
        return measured_busy_[point];

    // Unvisited point: scale the calibrated per-column useful-slot
    // demand by the point's ZORM fraction and divider. Without any
    // calibration yet the estimate is unusable — report infinity so
    // decide() stays at the baseline until the first observation.
    const DvfsOperatingPoint &pt = table_.points()[point];
    uint64_t est = 0;
    bool any = false;
    for (size_t j = 0; j < pt.zorms.size(); ++j) {
        unsigned c = pt.zorm_columns[j];
        if (c >= work_slots_.size() || work_slots_[c] == 0)
            continue;
        any = true;
        double useful = pt.zorms[j].usefulFraction();
        double slots = double(work_slots_[c]) /
                       (useful > 0 ? useful : 1.0);
        double ticks = slots * pt.dividers[c] * cfg_.headroom;
        est = std::max(est, uint64_t(std::ceil(ticks)));
    }
    if (!any)
        return std::numeric_limits<uint64_t>::max();
    // Physical floor: no point drains faster than the fastest
    // (baseline) point has been measured to.
    uint64_t base = measured_busy_[table_.baselineIndex()];
    return std::max(est, base);
}

size_t
DvfsGovernor::decide(double declared_rate_scale)
{
    size_t chosen = table_.baselineIndex();
    if (declared_rate_scale <= 0) {
        // An idle gap has no deadline: the cheapest verified point.
        chosen = 0;
    } else {
        double window =
            nominal_window_ticks_ / declared_rate_scale;
        uint64_t budget = uint64_t(cfg_.setpoint * window);
        for (size_t i = 0; i < table_.points().size(); ++i) {
            if (predictedBusyTicks(i) <= budget) {
                chosen = i;
                break;
            }
        }
    }
    decisions_.push_back(chosen);
    current_ = chosen;
    return chosen;
}

bool
DvfsGovernor::applyPoint(arch::Chip &chip, size_t point)
{
    if (point >= table_.points().size())
        return false;
    if (!chip.atReconfigPoint())
        return false;
    applyOperatingPoint(chip, table_.points()[point]);
    applied_.push_back(point);
    current_ = point;
    return true;
}

bool
DvfsGovernor::applyDividers(arch::Chip &chip,
                            const std::vector<unsigned> &dividers)
{
    size_t idx = table_.indexOf(dividers);
    if (idx == SafeTransitionTable::npos)
        return false; // no precomputed proof -> never applied
    return applyPoint(chip, idx);
}

void
DvfsGovernor::noteDeadlineMiss()
{
    ++deadline_misses_;
    // The measured busy time of the current point already reflects
    // the overrun; inflate it slightly so a point that misses right
    // at the boundary is not re-picked by a hair.
    measured_busy_[current_] += measured_busy_[current_] / 16 + 1;
}

size_t
measuredOraclePoint(const SafeTransitionTable &table,
                    const std::vector<uint64_t> &busy_by_point,
                    double declared_rate_scale,
                    double nominal_window_ticks, double setpoint)
{
    if (declared_rate_scale <= 0)
        return 0;
    double window = nominal_window_ticks / declared_rate_scale;
    uint64_t budget = uint64_t(setpoint * window);
    for (size_t i = 0; i < table.points().size(); ++i) {
        if (i < busy_by_point.size() && busy_by_point[i] <= budget)
            return i;
    }
    return table.baselineIndex();
}

GovernedRunResult
runGoverned(const DvfsAppHooks &app,
            const sim::TrafficScenario &scenario,
            const GovernedRunOptions &opt)
{
    using clock = std::chrono::steady_clock;

    if (app.iterations_per_item == 0)
        fatal("runGoverned(%s): iterations_per_item must be set",
              app.name.c_str());

    SystemPowerModel model;
    VfModel vf;
    SupplyLevels levels(vf);

    SafeTransitionTable table = SafeTransitionTable::build(
        app.artifact, opt.governor.rate_scales, levels);

    double ref_hz = app.artifact.plan.ref_freq_mhz * 1e6;
    double window_sec = double(app.iterations_per_item) /
                        app.artifact.iterations_per_sec;
    double window_ticks = window_sec * ref_hz;

    GovernedRunResult res;
    res.app = app.name;
    res.policy = opt.policy;
    res.table_points = table.points().size();
    res.table_rejected = table.rejected();

    const sim::FleetWorkload &wl = app.workload;
    std::unique_ptr<arch::Chip> chip = wl.build(opt.scheduler);

    // Oracle calibration: one probe item per point, on a clone so
    // the measured chip's counters stay clean. The probe must run
    // before the main chip does (clone is only legal at tick 0).
    std::vector<uint64_t> busy_by_point;
    if (opt.policy == DvfsPolicy::Oracle) {
        std::unique_ptr<arch::Chip> probe = chip->clone();
        for (const DvfsOperatingPoint &pt : table.points()) {
            applyOperatingPoint(*probe, pt);
            wl.feed(*probe, 0);
            arch::RunResult r =
                probe->run(itemBudget(wl.tick_limit, pt));
            busy_by_point.push_back(
                r.exit == arch::RunExit::AllHalted
                    ? r.ticks
                    : std::numeric_limits<uint64_t>::max());
        }
    }

    DvfsGovernorConfig gcfg = opt.governor;
    gcfg.setpoint = app.setpoint > 0 ? app.setpoint : gcfg.setpoint;
    DvfsGovernor gov(table, window_ticks, gcfg);

    // Epoch accumulator: counters zeroed, column shapes (index,
    // active tiles) from the programmed chip.
    ActivityReport shape = collectActivity(*chip);
    ActivityReport acc = shape;
    for (ColumnActivity &c : acc.columns) {
        c.issue_slots = c.compute_slots = 0;
        c.branch_stalls = c.comm_stall_slots = c.zorm_nops = 0;
        c.utilization = 0;
    }
    acc.bus_transfers = acc.wire_span_sum = 0;
    const ActivityReport acc_zero = acc;
    double acc_seconds = 0;

    size_t cur = table.baselineIndex();

    auto closeEpoch = [&]() {
        if (acc_seconds <= 0)
            return;
        res.epochs.push_back({acc, acc_seconds});
        acc = acc_zero;
        acc_seconds = 0;
    };
    auto padIdle = [&](double idle_ticks) {
        // Active idle: the columns keep clocking at the CURRENT
        // point, so the epoch's priced frequency stays the
        // configured one (slots = ticks / divider => f = f_column).
        const DvfsOperatingPoint &pt = table.points()[cur];
        for (ColumnActivity &c : acc.columns) {
            if (c.active_tiles == 0)
                continue;
            c.issue_slots +=
                uint64_t(idle_ticks / pt.dividers[c.column]);
        }
    };
    auto switchTo = [&](size_t target) {
        if (target == cur)
            return;
        closeEpoch();
        if (opt.policy == DvfsPolicy::Governed) {
            if (!gov.applyPoint(*chip, target)) {
                fatal("runGoverned(%s): governor failed to apply "
                      "verified point %zu",
                      app.name.c_str(), target);
            }
        } else {
            applyOperatingPoint(*chip, table.points()[target]);
        }
        cur = target;
    };

    for (const sim::TrafficEvent &ev : scenario.events()) {
        if (ev.idle) {
            if (opt.policy == DvfsPolicy::Governed)
                switchTo(gov.decide(0));
            else if (opt.policy == DvfsPolicy::Oracle)
                switchTo(measuredOraclePoint(table, busy_by_point, 0,
                                             window_ticks,
                                             gcfg.setpoint));
            double sec = ev.windows * window_sec;
            padIdle(ev.windows * window_ticks);
            acc_seconds += sec;
            res.stream_seconds += sec;
            continue;
        }

        size_t target = table.baselineIndex();
        if (opt.policy == DvfsPolicy::Governed)
            target = gov.decide(ev.rate_scale);
        else if (opt.policy == DvfsPolicy::Oracle)
            target = measuredOraclePoint(table, busy_by_point,
                                         ev.rate_scale, window_ticks,
                                         gcfg.setpoint);
        switchTo(target);

        wl.feed(*chip, ev.item);
        ActivityReport before = collectActivity(*chip);
        uint64_t def_before = busDeferrals(*chip);
        auto t0 = clock::now();
        arch::RunResult r =
            chip->run(itemBudget(wl.tick_limit, table.points()[cur]));
        res.sim_seconds +=
            std::chrono::duration<double>(clock::now() - t0).count();
        ActivityReport after = collectActivity(*chip);

        uint64_t busy = r.ticks;
        res.busy_ticks += busy;
        ++res.items;
        res.trajectory.push_back(cur);

        if (r.exit != arch::RunExit::AllHalted) {
            res.bit_exact = false;
            if (res.first_failure.empty()) {
                res.first_failure = strprintf(
                    "%s item %llu did not drain at point %zu",
                    app.name.c_str(), (unsigned long long)ev.item,
                    cur);
            }
        } else {
            std::vector<uint8_t> out = wl.read_output(*chip);
            if (opt.verify_outputs) {
                std::vector<uint8_t> want = wl.golden(ev.item);
                if (out != want) {
                    res.bit_exact = false;
                    if (res.first_failure.empty()) {
                        res.first_failure = strprintf(
                            "%s item %llu mismatches its golden at "
                            "point %zu",
                            app.name.c_str(),
                            (unsigned long long)ev.item, cur);
                    }
                }
            }
            if (opt.keep_outputs)
                res.outputs.push_back(std::move(out));
        }

        double ev_window_ticks = ev.windows * window_ticks;
        bool missed = double(busy) > ev_window_ticks;
        if (missed) {
            ++res.deadline_misses;
            if (opt.policy == DvfsPolicy::Governed)
                gov.noteDeadlineMiss();
        }
        if (opt.policy == DvfsPolicy::Governed) {
            gov.observe(cur, busy, activityDelta(before, after),
                        busDeferrals(*chip) - def_before);
        }

        // The event's wall share: the arrival window, stretched when
        // the item overran it. The slack between drain and window is
        // active idle at the current point's clocks.
        double ev_sec =
            std::max(ev.windows * window_sec, double(busy) / ref_hz);
        addActivityDelta(acc, before, after);
        if (!missed)
            padIdle(ev_window_ticks - double(busy));
        acc_seconds += ev_sec;
        res.stream_seconds += ev_sec;
    }
    closeEpoch();

    if (!res.epochs.empty()) {
        res.power = priceActivityEpochs(res.epochs,
                                        chip->numColumns(), levels,
                                        model);
    }
    return res;
}

std::shared_ptr<GovernedFleetState>
makeGovernedFleetState(const DvfsAppHooks &app,
                       const sim::TrafficSpec &traffic,
                       const DvfsGovernorConfig &cfg)
{
    if (app.iterations_per_item == 0)
        fatal("makeGovernedFleetState(%s): iterations_per_item must "
              "be set",
              app.name.c_str());
    VfModel vf;
    SupplyLevels levels(vf);

    auto state = std::make_shared<GovernedFleetState>();
    state->table = SafeTransitionTable::build(
        app.artifact, cfg.rate_scales, levels);
    state->cfg = cfg;
    state->cfg.setpoint =
        app.setpoint > 0 ? app.setpoint : cfg.setpoint;
    state->nominal_window_ticks =
        double(app.iterations_per_item) /
        app.artifact.iterations_per_sec *
        app.artifact.plan.ref_freq_mhz * 1e6;

    sim::TrafficScenario scenario(traffic);
    for (const sim::TrafficEvent &ev : scenario.events()) {
        if (!ev.idle)
            state->rate_by_item.push_back(ev.rate_scale);
    }
    return state;
}

sim::FleetWorkload
governedFleetWorkload(const DvfsAppHooks &app,
                      std::shared_ptr<GovernedFleetState> state)
{
    sim::FleetWorkload wl = app.workload;
    wl.name = app.name + "-governed";

    // Slower points drain later: budget for the slowest table point
    // (points are sorted ascending by rate scale, so front() is it).
    wl.tick_limit = itemBudget(app.workload.tick_limit,
                               state->table.points().front());

    // Grid-period sampling: serve each item in slices so the
    // governor's sampling points exist even mid-item (retunes still
    // only happen at item boundaries — the reconfiguration points).
    wl.run_chunk = Tick(app.artifact.prog.slot_spacing) *
                   std::max(1u, state->cfg.sample_periods);
    wl.on_slice = [state](arch::Chip &, uint64_t, Tick) {
        std::lock_guard<std::mutex> lk(state->mu);
        ++state->slices;
    };

    auto inner_feed = app.workload.feed;
    wl.feed = [state, inner_feed](arch::Chip &chip, uint64_t item) {
        std::lock_guard<std::mutex> lk(state->mu);
        GovernedFleetState::PerChip &pc = state->chips[&chip];
        if (!pc.started || item != pc.expected_next) {
            // A fresh stream (or a reused chip pointer): reset the
            // per-stream controller. Decisions depend only on the
            // stream's own history, so any worker count serves the
            // same trajectory.
            pc = GovernedFleetState::PerChip{};
            pc.gov = std::make_unique<DvfsGovernor>(
                state->table, state->nominal_window_ticks,
                state->cfg);
            pc.cur = state->table.baselineIndex();
            pc.started = true;
        } else if (pc.have_prev) {
            // Observe the previous item before feed() restarts the
            // chip: curTick() is still its drain time.
            pc.gov->observe(
                pc.cur, chip.curTick(),
                activityDelta(pc.after_feed, collectActivity(chip)),
                busDeferrals(chip) - pc.deferrals);
        }
        size_t target = pc.gov->decide(state->rateForItem(item));
        inner_feed(chip, item);
        if (target != pc.cur) {
            if (!pc.gov->applyPoint(chip, target)) {
                fatal("governed fleet: failed to apply verified "
                      "point %zu",
                      target);
            }
            pc.cur = target;
        }
        pc.after_feed = collectActivity(chip);
        pc.deferrals = busDeferrals(chip);
        pc.have_prev = true;
        pc.expected_next = item + 1;
        state->decision_by_item[item] = target;
    };
    return wl;
}

} // namespace synchro::power
