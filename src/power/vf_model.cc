#include "power/vf_model.hh"

#include <cmath>

#include "common/log.hh"

namespace synchro::power
{

namespace
{

/**
 * The monotone subset of Table 4's (frequency MHz, voltage V) pairs
 * used for the fit. Sub-floor frequencies (40/60/70 MHz at 0.7 V) are
 * clamped points, not curve samples, and the 540 MHz @ 1.7 V Viterbi
 * point sits above Table 1's 600 MHz @ 1.65 V — both are excluded
 * from the regression but kept in the supply-level table.
 */
const std::vector<std::pair<double, double>> fit_points = {
    {100.0, 0.7}, {120.0, 0.8}, {200.0, 1.0}, {280.0, 1.1},
    {330.0, 1.2}, {380.0, 1.3}, {500.0, 1.5},
};

} // namespace

VfModel::VfModel(const TechParams &tech, double fo4)
    : tech_(tech), fo4_(fo4)
{
    if (fo4 <= 0)
        fatal("VfModel: fo4 depth must be positive");
    // Least-squares fit of ln(f*V) = ln k + alpha ln(V - Vth).
    double sx = 0, sy = 0, sxx = 0, sxy = 0;
    const double n = double(fit_points.size());
    for (auto [f, v] : fit_points) {
        double x = std::log(v - tech_.vth);
        double y = std::log(f * v);
        sx += x;
        sy += y;
        sxx += x * x;
        sxy += x * y;
    }
    alpha_ = (n * sxy - sx * sy) / (n * sxx - sx * sx);
    k_ = std::exp((sy - alpha_ * sx) / n);
}

double
VfModel::frequencyMhz(double v) const
{
    if (v <= tech_.vth)
        return 0.0;
    double f20 = k_ * std::pow(v - tech_.vth, alpha_) / v;
    // A shallower pipeline (fewer FO4 per stage) clocks faster in
    // inverse proportion to its critical-path depth.
    return f20 * (20.0 / fo4_);
}

double
VfModel::voltageFor(double f_mhz) const
{
    if (f_mhz <= 0)
        fatal("VfModel: frequency must be positive");
    if (f_mhz <= frequencyMhz(tech_.vdd_min))
        return tech_.vdd_min; // voltage floor
    double lo = tech_.vdd_min;
    double hi = tech_.extended_vmax;
    if (frequencyMhz(hi) < f_mhz)
        fatal("VfModel: %.1f MHz unreachable below %.2f V", f_mhz, hi);
    for (int i = 0; i < 60; ++i) {
        double mid = 0.5 * (lo + hi);
        if (frequencyMhz(mid) >= f_mhz)
            hi = mid;
        else
            lo = mid;
    }
    return hi;
}

const std::vector<std::pair<double, double>> &
SupplyLevels::paperPoints()
{
    static const std::vector<std::pair<double, double>> pts = {
        {100.0, 0.7}, {120.0, 0.8}, {200.0, 1.0}, {280.0, 1.1},
        {330.0, 1.2}, {380.0, 1.3}, {500.0, 1.5}, {540.0, 1.7},
    };
    return pts;
}

SupplyLevels::SupplyLevels(const VfModel &model)
{
    levels_ = paperPoints();
    // Extend above the paper's published points using the fitted
    // curve in 100 MHz steps up to the extended voltage ceiling.
    double top_v = model.tech().extended_vmax;
    double top_f = model.frequencyMhz(top_v);
    for (double f = 600.0; f <= top_f; f += 100.0)
        levels_.emplace_back(f, model.voltageFor(f));
}

double
SupplyLevels::voltageFor(double f_mhz) const
{
    for (const auto &[f, v] : levels_) {
        if (f_mhz <= f + 1e-9)
            return v;
    }
    fatal("SupplyLevels: no supply level sustains %.1f MHz (max %.1f)",
          f_mhz, levels_.back().first);
}

double
SupplyLevels::maxFrequencyMhz() const
{
    return levels_.back().first;
}

} // namespace synchro::power
