/**
 * @file
 * Area model (paper Section 4.6 and Table 2).
 *
 * Component areas were synthesized at 0.25 um (memory, register file
 * and multipliers estimated from technology-independent models [15])
 * and scaled to 0.13 um. The headline numbers: tile = 1.82 mm^2, SIMD
 * controller = 0.25 mm^2, DOU = 0.0875 mm^2.
 *
 * Note: Table 2's printed "Total 650000" for the controller section
 * does not equal the sum of its own rows (1,304,000 um^2 at 0.25 um);
 * the text's 0.25 + 0.0875 mm^2 at 0.13 um is consistent with the
 * row sum and linear-area scaling, so we follow the rows.
 */

#ifndef SYNC_POWER_AREA_HH
#define SYNC_POWER_AREA_HH

#include <string>
#include <vector>

#include "power/interconnect.hh"
#include "power/tech_params.hh"

namespace synchro::power
{

struct AreaComponent
{
    std::string name;
    double area_um2_250nm; //!< synthesized at 0.25 um
};

class AreaModel
{
  public:
    explicit AreaModel(const TechParams &tech = defaultTech())
        : tech_(tech)
    {}

    /** Table 2, tile section (um^2 at 0.25 um). */
    static const std::vector<AreaComponent> &tileComponents();

    /** Table 2, SIMD controller + DOU section (um^2 at 0.25 um). */
    static const std::vector<AreaComponent> &controllerComponents();

    /** Linear area scaling factor from 0.25 um to the target node. */
    double
    scaleFactor() const
    {
        double r = tech_.feature_nm / 250.0;
        return r * r;
    }

    /** Sum of a component list after scaling (mm^2). */
    double scaledTotalMm2(const std::vector<AreaComponent> &c) const;

    /** The paper's headline per-tile area (mm^2). */
    double tileAreaMm2() const { return tech_.tile_area_mm2; }

    /** Per-column controller overhead: SIMD controller + DOU. */
    double
    columnOverheadMm2() const
    {
        return tech_.simd_ctrl_area_mm2 + tech_.dou_area_mm2;
    }

    /**
     * Whole-design area: tiles, per-column controllers, and the bus
     * (vertical lanes per column plus the horizontal run).
     *
     * @param tiles       total populated tiles
     * @param columns     number of columns (ceil(tiles/4) typically)
     * @param bus_bits    width of the data buses in bits
     */
    double
    chipAreaMm2(unsigned tiles, unsigned columns,
                unsigned bus_bits) const
    {
        InterconnectModel ic(tech_);
        // One vertical bus per column (each spanning the column
        // height, approximated as a full-length run amortized over
        // the columns) plus one horizontal bus.
        double bus = ic.busAreaMm2(bus_bits) * 2.0;
        return tiles * tileAreaMm2() +
               columns * columnOverheadMm2() + bus;
    }

  private:
    TechParams tech_;
};

} // namespace synchro::power

#endif // SYNC_POWER_AREA_HH
