/**
 * @file
 * Subthreshold leakage model (paper Section 4.4).
 *
 * I_sub = I_on * W * exp(-Vth / (n * v_T)), with v_T = kT/q. With the
 * paper's assumptions (Vth = 0.332 V, T = 80 C, n in 1.3..1.5, I_on ~
 * 0.3 uA/um) the calibration lands on 830 pA per transistor; at
 * 1.8 M transistors that is ~1.5 mA per tile. Idle (supply-gated)
 * tiles leak nothing.
 */

#ifndef SYNC_POWER_LEAKAGE_HH
#define SYNC_POWER_LEAKAGE_HH

#include <cmath>

#include "power/tech_params.hh"

namespace synchro::power
{

class LeakageModel
{
  public:
    struct Params
    {
        double vth = 0.332;          //!< threshold voltage (V)
        double temperature_c = 80.0;
        double n = 1.4;              //!< subthreshold slope factor
        double ion_ua_per_um = 0.3;  //!< on-current density
        double avg_width_um = 6.7;   //!< calibrated to 830 pA/device
    };

    explicit LeakageModel(const TechParams &tech = defaultTech())
        : tech_(tech), p_()
    {}

    LeakageModel(const TechParams &tech, const Params &p)
        : tech_(tech), p_(p)
    {}

    /** Thermal voltage kT/q at the model temperature (V). */
    double
    thermalVoltage() const
    {
        constexpr double k_over_q = 8.617333e-5; // V per kelvin
        return k_over_q * (p_.temperature_c + 273.15);
    }

    /** Subthreshold current of an average transistor (A). */
    double
    currentPerTransistorA() const
    {
        double ion = p_.ion_ua_per_um * 1e-6 * p_.avg_width_um;
        return ion * std::exp(-p_.vth / (p_.n * thermalVoltage()));
    }

    /** Leakage current of one powered tile (mA). */
    double
    currentPerTileMa() const
    {
        return currentPerTransistorA() * tech_.transistors_per_tile *
               1e3;
    }

    /** Leakage power of @p tiles powered tiles at supply @p v (mW). */
    double
    powerMw(unsigned tiles, double v) const
    {
        return currentPerTileMa() * tiles * v;
    }

    /** As powerMw but with an explicit per-tile current (the Figure
     * 9/10 sensitivity sweeps set this directly). */
    static double
    powerMwAt(double i_leak_ma_per_tile, unsigned tiles, double v)
    {
        return i_leak_ma_per_tile * tiles * v;
    }

    const Params &params() const { return p_; }

  private:
    TechParams tech_;
    Params p_;
};

} // namespace synchro::power

#endif // SYNC_POWER_LEAKAGE_HH
