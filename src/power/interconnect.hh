/**
 * @file
 * Interconnect power and capacitance model (paper Section 4.3).
 *
 * "The interconnect is modelled by the wire capacitance to a first
 * order approximation": a semi-global wire has 387 fF/mm in 130 nm
 * [Ho/Mai/Horowitz, The Future of Wires]; a chip-length (10 mm) wire
 * is therefore ~3.87 pF, dwarfing driver/segmenter parasitics (8
 * 10x-minimum drivers add only ~160 fF). A 32-bit lane transfer
 * switches 32 wires: P = transfers/s * 32 * C_wire * V^2 (the paper's
 * alpha * C * V^2 * f with full-swing switching).
 */

#ifndef SYNC_POWER_INTERCONNECT_HH
#define SYNC_POWER_INTERCONNECT_HH

#include "power/tech_params.hh"

namespace synchro::power
{

class InterconnectModel
{
  public:
    explicit InterconnectModel(const TechParams &tech = defaultTech())
        : tech_(tech)
    {}

    /** Capacitance of one full-length bus wire (F). */
    double
    wireCapF(double span_fraction = 1.0) const
    {
        return tech_.wire_cap_ff_per_mm * 1e-15 * tech_.bus_length_mm *
               span_fraction;
    }

    /**
     * Energy of one @p bits-wide transfer at supply @p v over
     * @p span_fraction of the bus length (J).
     */
    double
    transferEnergyJ(unsigned bits, double v,
                    double span_fraction = 1.0) const
    {
        return double(bits) * wireCapF(span_fraction) * v * v;
    }

    /** Bus power for a sustained transfer rate (mW). */
    double
    powerMw(double transfers_per_sec, unsigned bits_per_transfer,
            double v, double span_fraction = 1.0) const
    {
        return transfers_per_sec *
               transferEnergyJ(bits_per_transfer, v, span_fraction) *
               1e3;
    }

    /** Area of a @p wires-wide bus run of the full length (mm^2). */
    double
    busAreaMm2(unsigned wires) const
    {
        return double(wires) * tech_.wire_pitch_um * 1e-3 *
               tech_.bus_length_mm;
    }

    const TechParams &tech() const { return tech_; }

  private:
    TechParams tech_;
};

} // namespace synchro::power

#endif // SYNC_POWER_INTERCONNECT_HH
