/**
 * @file
 * Tile dynamic-power model (paper Section 4.2).
 *
 * P_tile = U * f * (V / Vref)^2 per active tile, with U the normalized
 * power in mW/MHz at the reference voltage. U bundles the datapath,
 * register file, data memory, and the column's amortized SIMD
 * controller + DOU share.
 */

#ifndef SYNC_POWER_TILE_POWER_HH
#define SYNC_POWER_TILE_POWER_HH

#include "power/tech_params.hh"

namespace synchro::power
{

/** The paper's synthesis-derived normalized-power breakdown. */
struct TilePowerChain
{
    // Normalized power at the 2.5 V / 0.25 um synthesis corner,
    // scaled to 130 nm geometry (Section 4.2).
    double datapath_mw_mhz = 0.03;
    double regfile_mw_mhz = 0.11; //!< 32x32, 4R/2W ports [27]
    double memory_mw_mhz = 1.75;  //!< 32 KB SRAM [28]
    double simd_dou_mw_mhz = 0.25; //!< amortized over 4 tiles

    /** Sum before the custom-logic assumption: 2.14 mW/MHz. */
    double
    synthesizedTotal() const
    {
        return datapath_mw_mhz + regfile_mw_mhz + memory_mw_mhz +
               simd_dou_mw_mhz;
    }

    /**
     * The paper assumes a custom (not synthesized) implementation
     * with proper transistor sizing reaches 0.642 mW/MHz at 2.5 V;
     * this is the implied overall reduction factor (0.642 / 2.14).
     */
    double
    customLogicFactor() const
    {
        return 0.642 / synthesizedTotal();
    }

    /** U at 2.5 V after the custom-logic reduction. */
    double
    customTotalAt2v5() const
    {
        return synthesizedTotal() * customLogicFactor();
    }

    /** U re-referenced to 1 V: x (1 / 2.5)^2 -> ~0.103 mW/MHz. */
    double
    uAt1V() const
    {
        return customTotalAt2v5() / (2.5 * 2.5);
    }
};

class TilePowerModel
{
  public:
    explicit TilePowerModel(const TechParams &tech = defaultTech())
        : u_mw_per_mhz_(tech.tile_power_mw_per_mhz), vref_(tech.vref)
    {}

    TilePowerModel(double u_mw_per_mhz, double vref)
        : u_mw_per_mhz_(u_mw_per_mhz), vref_(vref)
    {}

    /** Dynamic power of one tile at @p f_mhz and supply @p v (mW). */
    double
    dynamicMw(double f_mhz, double v) const
    {
        double s = v / vref_;
        return u_mw_per_mhz_ * f_mhz * s * s;
    }

    double u() const { return u_mw_per_mhz_; }
    double vref() const { return vref_; }

  private:
    double u_mw_per_mhz_;
    double vref_;
};

} // namespace synchro::power

#endif // SYNC_POWER_TILE_POWER_HH
