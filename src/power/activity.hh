/**
 * @file
 * Activity-driven power estimation: the bridge from a simulated chip
 * to the Section 4.1 power model, closing the paper's methodology
 * loop (steps 6-9: simulate to get cycles, derive frequencies from
 * the data rate, look up voltages, evaluate the power equations).
 *
 * Given a finished simulation and the wall-clock data rate the run
 * represents, each column's required frequency is
 *
 *     f_c = (issue slots consumed) / (samples processed) * rate
 *
 * and its bus traffic is the fabric's measured transfer count scaled
 * to transfers/s. Voltages come from the quantized supply levels.
 */

#ifndef SYNC_POWER_ACTIVITY_HH
#define SYNC_POWER_ACTIVITY_HH

#include <vector>

#include "arch/chip.hh"
#include "power/system_power.hh"
#include "power/vf_model.hh"

namespace synchro::power
{

/** Activity of one simulated column. */
struct ColumnActivity
{
    unsigned column = 0;
    unsigned active_tiles = 0;
    uint64_t issue_slots = 0;   //!< compute + stalls + zorm nops
    uint64_t compute_slots = 0; //!< instructions actually issued
    double utilization = 0;     //!< compute / issue

    // The issue-slot split the DVFS governor's feedback loop reads:
    // branch stalls and compute are rate-invariant work per item,
    // comm stalls track cross-column coupling, and zorm nops are the
    // operating point's own padding (what retuning reclaims).
    uint64_t branch_stalls = 0;
    uint64_t comm_stall_slots = 0;
    uint64_t zorm_nops = 0;
};

/** Activity extracted from a finished simulation. */
struct ActivityReport
{
    std::vector<ColumnActivity> columns;
    uint64_t bus_transfers = 0;
    uint64_t wire_span_sum = 0;

    /** Mean switched-span fraction per transfer (1.0 = full bus). */
    double
    meanSpanFraction(unsigned nodes_full_span) const
    {
        if (bus_transfers == 0)
            return 0.0;
        return double(wire_span_sum) /
               (double(bus_transfers) * nodes_full_span);
    }
};

/** Collect per-column and fabric activity from a chip. */
ActivityReport collectActivity(const arch::Chip &chip);

/**
 * Price a simulated run with the Section 4.1 equations.
 *
 * @param chip             the finished simulation
 * @param samples          input samples the run processed
 * @param sample_rate_hz   the real-time rate those samples represent
 * @param levels           quantized supply levels for voltage lookup
 *
 * Each column's frequency requirement is derived from its measured
 * slots/sample; bus power uses the measured transfer count and spans.
 */
PowerBreakdown priceSimulation(const arch::Chip &chip,
                               uint64_t samples,
                               double sample_rate_hz,
                               const SupplyLevels &levels,
                               const SystemPowerModel &model);

/**
 * Measured multi-V vs single-V comparison — Table 4's two power
 * columns, but produced from simulated activity instead of the
 * paper's calibrated estimates. The multi-V breakdown is exactly
 * priceSimulation()'s; the single-voltage baseline re-prices every
 * column at the run's maximum supply with unchanged frequencies
 * (paper Section 4.4).
 */
struct MeasuredComparison
{
    PowerBreakdown multi_v;
    PowerBreakdown single_v;
    double vmax = 0;           //!< highest per-column supply seen
    std::vector<DomainLoad> loads; //!< derived per-column loads

    /** Percentage saved by multiple voltage domains. */
    double
    savingsPct() const
    {
        double sv = single_v.total();
        return sv > 0 ? 100.0 * (1.0 - multi_v.total() / sv) : 0.0;
    }
};

MeasuredComparison priceSimulationComparison(
    const arch::Chip &chip, uint64_t samples, double sample_rate_hz,
    const SupplyLevels &levels, const SystemPowerModel &model);

/**
 * One stretch of a run executed at a single operating point: the
 * activity *deltas* accumulated between two reconfiguration points,
 * and the wall-clock time the stretch represents.
 */
struct ActivityEpoch
{
    ActivityReport activity;
    double seconds = 0;
};

/**
 * Price a run whose operating point changed mid-stream — e.g. a
 * DVFS-governed run — by pricing each inter-reconfiguration epoch at
 * its *own* derived V/f point and time-weighting the breakdowns.
 *
 * Aggregating the whole run into one priceSimulationComparison()
 * call silently attributes every epoch's activity to one averaged
 * frequency (and the final voltage), which mis-prices any run with a
 * mid-stream rate step; this is the epoch-faithful replacement. The
 * single-V baseline re-prices every epoch's loads at the *global*
 * maximum supply across all epochs, matching Table 4's "one supply
 * for the whole run" semantics.
 */
MeasuredComparison priceActivityEpochs(
    const std::vector<ActivityEpoch> &epochs, unsigned columns,
    const SupplyLevels &levels, const SystemPowerModel &model);

/**
 * Per-epoch bus power helper shared with priceActivityEpochs: the
 * measured bus power of one activity report over @p seconds at
 * supply @p v.
 */
double measuredBusMw(const ActivityReport &act, unsigned columns,
                     double seconds, double v,
                     const SystemPowerModel &model);

} // namespace synchro::power

#endif // SYNC_POWER_ACTIVITY_HH
