#include "power/area.hh"

namespace synchro::power
{

const std::vector<AreaComponent> &
AreaModel::tileComponents()
{
    static const std::vector<AreaComponent> c = {
        {"2 40-bit ALUs", 48000},
        {"1 40-bit Shifter", 500000},
        {"2 40-bit Accumulators", 11060},
        {"2 16x16 mult", 100000},
        {"32 KB SRAM", 5570560},
        {"32x32 Regfile 4R/2W", 650000},
        {"Rest (glue + wiring)", 393000},
    };
    return c;
}

const std::vector<AreaComponent> &
AreaModel::controllerComponents()
{
    static const std::vector<AreaComponent> c = {
        {"DOU", 350000},
        {"2 KB Instruction SRAM", 350000},
        {"Sequencer", 225000},
        {"LBANK", 59000},
        {"STACK32", 180000},
        {"Rest", 140000},
    };
    return c;
}

double
AreaModel::scaledTotalMm2(const std::vector<AreaComponent> &c) const
{
    double total_um2 = 0;
    for (const auto &comp : c)
        total_um2 += comp.area_um2_250nm;
    return total_um2 * scaleFactor() * 1e-6;
}

} // namespace synchro::power
