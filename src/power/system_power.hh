/**
 * @file
 * Whole-design power estimation — the equations of paper Section 4.1
 * step 9:
 *
 *   P_total        = P_tile + P_interconnect + P_leakage
 *   P_tile         = sum_c N_c * U * f_c * (V_c / V_ref)^2
 *   P_interconnect = transfers/s * C_switched * V_bus^2
 *   P_leakage      = sum_c N_c * I_leak * V_c
 *
 * A "load" is one algorithmic block mapped onto N tiles at one
 * frequency/voltage, moving a given bus-transfer rate. An application
 * is a list of loads; the single-voltage baseline re-evaluates every
 * load at the application's maximum voltage (same frequencies).
 */

#ifndef SYNC_POWER_SYSTEM_POWER_HH
#define SYNC_POWER_SYSTEM_POWER_HH

#include <string>
#include <vector>

#include "power/interconnect.hh"
#include "power/leakage.hh"
#include "power/tile_power.hh"

namespace synchro::power
{

/** One algorithmic block mapped to a frequency/voltage domain. */
struct DomainLoad
{
    std::string name;
    unsigned tiles = 0;
    double f_mhz = 0;
    double v = 0;
    double bus_transfers_per_s = 0; //!< 32-bit bus transactions
};

/** Power breakdown of one load or one whole design (mW). */
struct PowerBreakdown
{
    double tile_mw = 0;
    double bus_mw = 0;
    double leak_mw = 0;

    double total() const { return tile_mw + bus_mw + leak_mw; }

    PowerBreakdown &
    operator+=(const PowerBreakdown &o)
    {
        tile_mw += o.tile_mw;
        bus_mw += o.bus_mw;
        leak_mw += o.leak_mw;
        return *this;
    }
};

class SystemPowerModel
{
  public:
    explicit SystemPowerModel(const TechParams &tech = defaultTech())
        : tech_(tech), tile_model_(tech), bus_model_(tech),
          i_leak_ma_per_tile_(tech.leakMaPerTile())
    {}

    /** Override the per-tile leakage current (Figure 9/10 sweeps). */
    void
    setLeakMaPerTile(double ma)
    {
        i_leak_ma_per_tile_ = ma;
    }

    double leakMaPerTile() const { return i_leak_ma_per_tile_; }

    /**
     * Power of one load. Bus transfers switch the full-length bus at
     * the driving domain's supply (the read/write buffers adapt tile
     * voltage to bus voltage, paper Section 2.3).
     */
    PowerBreakdown
    loadPower(const DomainLoad &l) const
    {
        PowerBreakdown b;
        b.tile_mw = l.tiles * tile_model_.dynamicMw(l.f_mhz, l.v);
        b.bus_mw = bus_model_.powerMw(l.bus_transfers_per_s, 32, l.v);
        b.leak_mw =
            LeakageModel::powerMwAt(i_leak_ma_per_tile_, l.tiles, l.v);
        return b;
    }

    /** Sum over an application's loads. */
    PowerBreakdown designPower(const std::vector<DomainLoad> &loads)
        const;

    /**
     * The single-voltage baseline: every load re-evaluated at the
     * application's maximum voltage with unchanged frequencies
     * (Table 4's "Single Voltage" column).
     */
    PowerBreakdown singleVoltagePower(
        const std::vector<DomainLoad> &loads) const;

    /** A load as it would run in the single-voltage baseline. */
    DomainLoad atVoltage(const DomainLoad &l, double v) const;

    const TilePowerModel &tileModel() const { return tile_model_; }
    const InterconnectModel &busModel() const { return bus_model_; }
    const TechParams &tech() const { return tech_; }

  private:
    TechParams tech_;
    TilePowerModel tile_model_;
    InterconnectModel bus_model_;
    double i_leak_ma_per_tile_;
};

} // namespace synchro::power

#endif // SYNC_POWER_SYSTEM_POWER_HH
