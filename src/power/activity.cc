#include "power/activity.hh"

#include <algorithm>

#include "common/log.hh"

namespace synchro::power
{

ActivityReport
collectActivity(const arch::Chip &chip)
{
    ActivityReport report;
    for (unsigned c = 0; c < chip.numColumns(); ++c) {
        const arch::Column &col = chip.column(c);
        const auto &st = col.controller().stats();
        ColumnActivity act;
        act.column = c;
        for (unsigned t = 0; t < col.numTiles(); ++t) {
            if (col.tileActive(t))
                ++act.active_tiles;
        }
        act.compute_slots = st.value("issued");
        act.branch_stalls = st.value("branchStalls");
        act.comm_stall_slots = st.value("commStalls");
        act.zorm_nops = st.value("zormNops");
        act.issue_slots = act.compute_slots + act.branch_stalls +
                          act.comm_stall_slots + act.zorm_nops;
        act.utilization =
            act.issue_slots
                ? double(act.compute_slots) / double(act.issue_slots)
                : 0.0;
        report.columns.push_back(act);
    }
    report.bus_transfers = chip.fabric().transfers();
    report.wire_span_sum = chip.fabric().wireSpanSum();
    return report;
}

double
measuredBusMw(const ActivityReport &act, unsigned columns,
              double seconds, double v,
              const SystemPowerModel &model)
{
    unsigned nodes = columns * 4 + 1;
    double span = act.bus_transfers
                      ? act.meanSpanFraction(nodes)
                      : 0.0;
    double transfers_per_s = double(act.bus_transfers) / seconds;
    return model.busModel().powerMw(transfers_per_s, 32,
                                    v > 0 ? v : 1.0,
                                    std::max(span, 1e-9));
}

namespace
{

/** Per-column loads of a measured run (f from slots/sample). */
std::vector<DomainLoad>
measuredLoads(const ActivityReport &act, double seconds,
              const SupplyLevels &levels)
{
    std::vector<DomainLoad> loads;
    for (const auto &col : act.columns) {
        if (col.issue_slots == 0 || col.active_tiles == 0)
            continue; // supply-gated column
        double f_mhz =
            double(col.issue_slots) / seconds / 1e6;
        double v = levels.voltageFor(f_mhz);
        loads.push_back(DomainLoad{strprintf("column%u", col.column),
                                   col.active_tiles, f_mhz, v, 0.0});
    }
    return loads;
}

} // namespace

PowerBreakdown
priceSimulation(const arch::Chip &chip, uint64_t samples,
                double sample_rate_hz, const SupplyLevels &levels,
                const SystemPowerModel &model)
{
    return priceSimulationComparison(chip, samples, sample_rate_hz,
                                     levels, model)
        .multi_v;
}

MeasuredComparison
priceSimulationComparison(const arch::Chip &chip, uint64_t samples,
                          double sample_rate_hz,
                          const SupplyLevels &levels,
                          const SystemPowerModel &model)
{
    if (samples == 0)
        fatal("priceSimulation: zero samples");
    ActivityReport act = collectActivity(chip);

    // Simulated time the run represents.
    double seconds = double(samples) / sample_rate_hz;

    MeasuredComparison cmp;
    cmp.loads = measuredLoads(act, seconds, levels);
    for (const auto &load : cmp.loads) {
        cmp.vmax = std::max(cmp.vmax, load.v);
        PowerBreakdown p = model.loadPower(load);
        cmp.multi_v.tile_mw += p.tile_mw;
        cmp.multi_v.leak_mw += p.leak_mw;
    }

    // Single-voltage baseline: same frequencies, every column at the
    // run's maximum supply (Table 4's "Single Voltage" column).
    for (const auto &load : cmp.loads) {
        PowerBreakdown p =
            model.loadPower(model.atVoltage(load, cmp.vmax));
        cmp.single_v.tile_mw += p.tile_mw;
        cmp.single_v.leak_mw += p.leak_mw;
    }

    // Bus power from measured transfers, at the highest domain
    // voltage (the buffers adapt tile voltages to the bus), with the
    // measured mean segment span. Identical in both columns, as in
    // the paper: the bus always runs at the top supply.
    double bus = measuredBusMw(act, chip.numColumns(), seconds,
                               cmp.vmax, model);
    cmp.multi_v.bus_mw = bus;
    cmp.single_v.bus_mw = bus;
    return cmp;
}

MeasuredComparison
priceActivityEpochs(const std::vector<ActivityEpoch> &epochs,
                    unsigned columns, const SupplyLevels &levels,
                    const SystemPowerModel &model)
{
    double total_seconds = 0;
    for (const ActivityEpoch &ep : epochs)
        total_seconds += ep.seconds;
    if (epochs.empty() || total_seconds <= 0)
        fatal("priceActivityEpochs: no timed epochs to price");

    // Per-epoch loads first: the global vmax (the single supply a
    // single-V chip would need for the whole run) is only known once
    // every epoch's own operating point has been derived.
    std::vector<std::vector<DomainLoad>> epoch_loads;
    MeasuredComparison cmp;
    for (const ActivityEpoch &ep : epochs) {
        epoch_loads.push_back(
            measuredLoads(ep.activity, ep.seconds, levels));
        for (const DomainLoad &load : epoch_loads.back())
            cmp.vmax = std::max(cmp.vmax, load.v);
    }

    // Time-weighted sum: each epoch priced at its own V/f point
    // (multi-V) and re-priced at the global vmax (single-V), both
    // weighted by the share of wall time the epoch covers.
    for (size_t e = 0; e < epochs.size(); ++e) {
        double w = epochs[e].seconds / total_seconds;
        PowerBreakdown multi, single;
        for (const DomainLoad &load : epoch_loads[e]) {
            PowerBreakdown p = model.loadPower(load);
            multi.tile_mw += p.tile_mw;
            multi.leak_mw += p.leak_mw;
            PowerBreakdown s =
                model.loadPower(model.atVoltage(load, cmp.vmax));
            single.tile_mw += s.tile_mw;
            single.leak_mw += s.leak_mw;
        }
        double bus = measuredBusMw(epochs[e].activity, columns,
                                   epochs[e].seconds, cmp.vmax,
                                   model);
        cmp.multi_v.tile_mw += w * multi.tile_mw;
        cmp.multi_v.leak_mw += w * multi.leak_mw;
        cmp.multi_v.bus_mw += w * bus;
        cmp.single_v.tile_mw += w * single.tile_mw;
        cmp.single_v.leak_mw += w * single.leak_mw;
        cmp.single_v.bus_mw += w * bus;

        // Keep the last epoch's loads as the representative set (the
        // callers that inspect loads want "where did the run end up").
        if (e + 1 == epochs.size())
            cmp.loads = epoch_loads[e];
    }
    return cmp;
}

} // namespace synchro::power
