#include "power/activity.hh"

#include <algorithm>

#include "common/log.hh"

namespace synchro::power
{

ActivityReport
collectActivity(const arch::Chip &chip)
{
    ActivityReport report;
    for (unsigned c = 0; c < chip.numColumns(); ++c) {
        const arch::Column &col = chip.column(c);
        const auto &st = col.controller().stats();
        ColumnActivity act;
        act.column = c;
        for (unsigned t = 0; t < col.numTiles(); ++t) {
            if (col.tileActive(t))
                ++act.active_tiles;
        }
        act.compute_slots = st.value("issued");
        act.issue_slots = st.value("issued") +
                          st.value("branchStalls") +
                          st.value("commStalls") +
                          st.value("zormNops");
        act.utilization =
            act.issue_slots
                ? double(act.compute_slots) / double(act.issue_slots)
                : 0.0;
        report.columns.push_back(act);
    }
    report.bus_transfers = chip.fabric().transfers();
    report.wire_span_sum = chip.fabric().wireSpanSum();
    return report;
}

namespace
{

/** Bus power of the measured run at the given supply. */
double
measuredBusMw(const arch::Chip &chip, const ActivityReport &act,
              double seconds, double v,
              const SystemPowerModel &model)
{
    unsigned nodes = chip.numColumns() * 4 + 1;
    double span = act.bus_transfers
                      ? act.meanSpanFraction(nodes)
                      : 0.0;
    double transfers_per_s = double(act.bus_transfers) / seconds;
    return model.busModel().powerMw(transfers_per_s, 32,
                                    v > 0 ? v : 1.0,
                                    std::max(span, 1e-9));
}

/** Per-column loads of a measured run (f from slots/sample). */
std::vector<DomainLoad>
measuredLoads(const ActivityReport &act, double seconds,
              const SupplyLevels &levels)
{
    std::vector<DomainLoad> loads;
    for (const auto &col : act.columns) {
        if (col.issue_slots == 0 || col.active_tiles == 0)
            continue; // supply-gated column
        double f_mhz =
            double(col.issue_slots) / seconds / 1e6;
        double v = levels.voltageFor(f_mhz);
        loads.push_back(DomainLoad{strprintf("column%u", col.column),
                                   col.active_tiles, f_mhz, v, 0.0});
    }
    return loads;
}

} // namespace

PowerBreakdown
priceSimulation(const arch::Chip &chip, uint64_t samples,
                double sample_rate_hz, const SupplyLevels &levels,
                const SystemPowerModel &model)
{
    return priceSimulationComparison(chip, samples, sample_rate_hz,
                                     levels, model)
        .multi_v;
}

MeasuredComparison
priceSimulationComparison(const arch::Chip &chip, uint64_t samples,
                          double sample_rate_hz,
                          const SupplyLevels &levels,
                          const SystemPowerModel &model)
{
    if (samples == 0)
        fatal("priceSimulation: zero samples");
    ActivityReport act = collectActivity(chip);

    // Simulated time the run represents.
    double seconds = double(samples) / sample_rate_hz;

    MeasuredComparison cmp;
    cmp.loads = measuredLoads(act, seconds, levels);
    for (const auto &load : cmp.loads) {
        cmp.vmax = std::max(cmp.vmax, load.v);
        PowerBreakdown p = model.loadPower(load);
        cmp.multi_v.tile_mw += p.tile_mw;
        cmp.multi_v.leak_mw += p.leak_mw;
    }

    // Single-voltage baseline: same frequencies, every column at the
    // run's maximum supply (Table 4's "Single Voltage" column).
    for (const auto &load : cmp.loads) {
        PowerBreakdown p =
            model.loadPower(model.atVoltage(load, cmp.vmax));
        cmp.single_v.tile_mw += p.tile_mw;
        cmp.single_v.leak_mw += p.leak_mw;
    }

    // Bus power from measured transfers, at the highest domain
    // voltage (the buffers adapt tile voltages to the bus), with the
    // measured mean segment span. Identical in both columns, as in
    // the paper: the bus always runs at the top supply.
    double bus = measuredBusMw(chip, act, seconds, cmp.vmax, model);
    cmp.multi_v.bus_mw = bus;
    cmp.single_v.bus_mw = bus;
    return cmp;
}

} // namespace synchro::power
