#include "power/activity.hh"

#include <algorithm>

#include "common/log.hh"

namespace synchro::power
{

ActivityReport
collectActivity(const arch::Chip &chip)
{
    ActivityReport report;
    for (unsigned c = 0; c < chip.numColumns(); ++c) {
        const arch::Column &col = chip.column(c);
        const auto &st = col.controller().stats();
        ColumnActivity act;
        act.column = c;
        for (unsigned t = 0; t < col.numTiles(); ++t) {
            if (col.tileActive(t))
                ++act.active_tiles;
        }
        act.compute_slots = st.value("issued");
        act.issue_slots = st.value("issued") +
                          st.value("branchStalls") +
                          st.value("commStalls") +
                          st.value("zormNops");
        act.utilization =
            act.issue_slots
                ? double(act.compute_slots) / double(act.issue_slots)
                : 0.0;
        report.columns.push_back(act);
    }
    report.bus_transfers = chip.fabric().transfers();
    report.wire_span_sum = chip.fabric().wireSpanSum();
    return report;
}

PowerBreakdown
priceSimulation(const arch::Chip &chip, uint64_t samples,
                double sample_rate_hz, const SupplyLevels &levels,
                const SystemPowerModel &model)
{
    if (samples == 0)
        fatal("priceSimulation: zero samples");
    ActivityReport act = collectActivity(chip);

    // Simulated time the run represents.
    double seconds = double(samples) / sample_rate_hz;

    PowerBreakdown total;
    double vmax = 0;
    for (const auto &col : act.columns) {
        if (col.issue_slots == 0 || col.active_tiles == 0)
            continue; // supply-gated column
        double f_mhz =
            double(col.issue_slots) / seconds / 1e6;
        double v = levels.voltageFor(f_mhz);
        vmax = std::max(vmax, v);
        DomainLoad load{strprintf("column%u", col.column),
                        col.active_tiles, f_mhz, v, 0.0};
        PowerBreakdown p = model.loadPower(load);
        total.tile_mw += p.tile_mw;
        total.leak_mw += p.leak_mw;
    }

    // Bus power from measured transfers, at the highest domain
    // voltage (the buffers adapt tile voltages to the bus), with the
    // measured mean segment span.
    unsigned nodes = chip.numColumns() * 4 + 1;
    double span = act.bus_transfers
                      ? act.meanSpanFraction(nodes)
                      : 0.0;
    double transfers_per_s = double(act.bus_transfers) / seconds;
    total.bus_mw = model.busModel().powerMw(transfers_per_s, 32,
                                            vmax > 0 ? vmax : 1.0,
                                            std::max(span, 1e-9));
    return total;
}

} // namespace synchro::power
