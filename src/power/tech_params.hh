/**
 * @file
 * Technology parameters of the Synchroscalar study (paper Table 1,
 * 130 nm, Berkeley Predictive Technology Model).
 *
 * Known paper inconsistencies, preserved as documented:
 *  - Table 1 lists "Wire Cap. 387 fF/um" but the interconnect text and
 *    all arithmetic use 387 fF/mm; we use fF/mm.
 *  - Max voltage is listed as 1.65 V yet the Viterbi ACS column runs
 *    at 1.7 V; the model permits voltages up to extended_vmax.
 */

#ifndef SYNC_POWER_TECH_PARAMS_HH
#define SYNC_POWER_TECH_PARAMS_HH

namespace synchro::power
{

struct TechParams
{
    double feature_nm = 130.0;
    double vdd_min = 0.7;          //!< voltage floor (V)
    double vdd_max = 1.65;         //!< Table 1 nominal max (V)
    double extended_vmax = 2.12;   //!< top of the Figure 5 sweep (V)
    double vth = 0.332;            //!< threshold voltage (V)
    double temperature_c = 80.0;   //!< leakage-analysis temperature
    double freq_floor_mhz = 100.0; //!< frequency floor
    double freq_max_mhz = 600.0;   //!< SPICE max at 20 FO4

    double tile_power_mw_per_mhz = 0.1; //!< U at Vref = 1 V
    double vref = 1.0;                  //!< reference voltage for U

    double tile_area_mm2 = 1.82;
    double simd_ctrl_area_mm2 = 0.25;
    double dou_area_mm2 = 0.0875;

    double wire_cap_ff_per_mm = 387.0; //!< semi-global wire
    double bus_length_mm = 10.0;       //!< chip-length bus
    double wire_pitch_um = 2.08;       //!< 16 x 130 nm semi-global

    double transistors_per_tile = 1.8e6;
    double leak_pa_per_transistor = 830.0; //!< at Vth/T above

    /** Leakage current per tile in mA (~1.5 mA in the paper). */
    double
    leakMaPerTile() const
    {
        return transistors_per_tile * leak_pa_per_transistor * 1e-12 *
               1e3;
    }
};

/** The default 130 nm parameter set used throughout the study. */
inline const TechParams &
defaultTech()
{
    static const TechParams tech{};
    return tech;
}

} // namespace synchro::power

#endif // SYNC_POWER_TECH_PARAMS_HH
