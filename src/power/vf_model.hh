/**
 * @file
 * Voltage-frequency model (paper Figure 5 and Section 4.2).
 *
 * The paper SPICEs a 20 FO4 critical path with the Berkeley Predictive
 * Technology Model and captures the result as a lookup table. We
 * reproduce it two ways:
 *
 *  1. An alpha-power-law MOSFET delay model
 *         f(V) = k * (V - Vth)^alpha / V
 *     with (k, alpha) least-squares fitted to the paper's published
 *     operating points, standing in for the SPICE sweep (substitution
 *     documented in DESIGN.md). A 15 FO4 pipeline is 20/15 faster.
 *
 *  2. The paper's own operating points as a quantized supply-level
 *     table (Section 2.4: "we support only a small set of frequencies
 *     and voltages"), used when mapping applications so Table 4
 *     reproduces the published voltages exactly.
 */

#ifndef SYNC_POWER_VF_MODEL_HH
#define SYNC_POWER_VF_MODEL_HH

#include <utility>
#include <vector>

#include "power/tech_params.hh"

namespace synchro::power
{

/** Analytic alpha-power-law frequency model. */
class VfModel
{
  public:
    /**
     * @param tech  technology constants (Vth, floors)
     * @param fo4   critical-path depth in FO4 (paper uses 20; 15 in
     *              Figure 5's second curve)
     */
    explicit VfModel(const TechParams &tech = defaultTech(),
                     double fo4 = 20.0);

    /** Maximum operating frequency (MHz) at supply @p v. */
    double frequencyMhz(double v) const;

    /**
     * Minimum supply for @p f_mhz, clamped to the voltage floor.
     * fatal() if the frequency is unreachable below extended_vmax.
     */
    double voltageFor(double f_mhz) const;

    double alpha() const { return alpha_; }
    double k() const { return k_; }

    const TechParams &tech() const { return tech_; }

  private:
    TechParams tech_;
    double fo4_;
    double alpha_;
    double k_; //!< MHz scale constant (at 20 FO4)
};

/**
 * The small set of supported (frequency ceiling, voltage) supply
 * levels, derived from the paper's Table 4 operating points and
 * extended above 540 MHz with the fitted model.
 */
class SupplyLevels
{
  public:
    explicit SupplyLevels(const VfModel &model);

    /**
     * The lowest supported level sustaining @p f_mhz; fatal() if no
     * level reaches it.
     */
    double voltageFor(double f_mhz) const;

    /** Highest frequency supported at all (the top level). */
    double maxFrequencyMhz() const;

    /** (f_ceiling_mhz, voltage) pairs in ascending order. */
    const std::vector<std::pair<double, double>> &
    levels() const
    {
        return levels_;
    }

    /** The operating points published in the paper's Table 4. */
    static const std::vector<std::pair<double, double>> &paperPoints();

  private:
    std::vector<std::pair<double, double>> levels_;
};

} // namespace synchro::power

#endif // SYNC_POWER_VF_MODEL_HH
