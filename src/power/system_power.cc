#include "power/system_power.hh"

#include <algorithm>

#include "common/log.hh"

namespace synchro::power
{

PowerBreakdown
SystemPowerModel::designPower(const std::vector<DomainLoad> &loads)
    const
{
    PowerBreakdown total;
    for (const auto &l : loads)
        total += loadPower(l);
    return total;
}

DomainLoad
SystemPowerModel::atVoltage(const DomainLoad &l, double v) const
{
    DomainLoad out = l;
    out.v = v;
    return out;
}

PowerBreakdown
SystemPowerModel::singleVoltagePower(
    const std::vector<DomainLoad> &loads) const
{
    if (loads.empty())
        return {};
    double vmax = 0;
    for (const auto &l : loads)
        vmax = std::max(vmax, l.v);
    PowerBreakdown total;
    for (const auto &l : loads)
        total += loadPower(atVoltage(l, vmax));
    return total;
}

} // namespace synchro::power
