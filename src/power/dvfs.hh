/**
 * @file
 * Closed-loop online DVFS governor (ROADMAP item 4).
 *
 * The paper's mappings are static: the AutoMapper picks one divider
 * and supply per column for the declared worst-case rate, and any
 * slack under a slower real stream is burned as active idle at the
 * planned clock. This module closes the loop at run time without
 * giving up the static safety story:
 *
 *  - A SafeTransitionTable is precomputed at load time: for each
 *    candidate rate scale the artifact's plan is re-derived through
 *    the SAME refreshPlacement() rules the explorer uses (divider,
 *    quantized supply, exact ZORM), the per-column ZORM settings are
 *    substituted into a copy of the lowered program, and the full
 *    static verifier (mapping/verifier.hh — the [slots]/[tokens]/
 *    [zorm] proofs) re-checks the candidate at the artifact's
 *    unchanged grid pacing. Only candidates whose proof goes through
 *    become operating points; the rest are counted as rejected.
 *
 *  - The DvfsGovernor is a per-chip feedback controller sampled at
 *    item boundaries (and, in fleet serving, at grid-period slices
 *    via FleetWorkload::on_slice): it reads per-column occupancy
 *    (comm-stall slots), bus deferral and ZORM-idle counters plus
 *    the drain time of every served item, calibrates a per-point
 *    busy-tick estimate, and retunes toward a rate setpoint —
 *    picking the cheapest verified point whose estimated busy time
 *    fits inside setpoint * the declared arrival window.
 *
 *  - Retunes are applied ONLY at statically-safe reconfiguration
 *    points (arch::Chip::retune enforces tick 0 / drained): between
 *    items the chip is fully comm-quiet, restart() realigns every
 *    clock edge from tick 0, and the verifier's phase-0 alignment
 *    assumption therefore holds for the retuned divider vector
 *    exactly as it did for the original.
 *
 * runGoverned() drives one chip through a sim::TrafficScenario under
 * a Static / Governed / Oracle policy and prices the run epoch by
 * epoch (power::priceActivityEpochs), so each inter-reconfiguration
 * stretch is charged at its own V/f point. governedFleetWorkload()
 * wraps a fleet workload with per-stream governor state so whole
 * chip fleets serve bursty traffic governed.
 */

#ifndef SYNC_POWER_DVFS_HH
#define SYNC_POWER_DVFS_HH

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "mapping/verifier.hh"
#include "power/activity.hh"
#include "sim/fleet.hh"
#include "sim/traffic.hh"

namespace synchro::power
{

/**
 * One app packaged for governed serving: the verifier-gated lowered
 * artifact (the safe-transition table's ground truth), the fleet
 * workload hooks (build / feed / read_output / golden), the app's
 * canonical traffic shape, and the item <-> SDF-iteration exchange
 * rate every window computation needs. Exposed per app through
 * apps::AppRegistry::dvfs().
 */
struct DvfsAppHooks
{
    std::string name;
    mapping::LoweredArtifact artifact;
    sim::FleetWorkload workload;

    /** The app's default scenario shape (seeded, deterministic). */
    sim::TrafficSpec traffic;

    /** SDF iterations one work item represents (nominal window =
     *  iterations_per_item / artifact.iterations_per_sec seconds). */
    uint64_t iterations_per_item = 0;

    /** Fraction of the arrival window an item may occupy. */
    double setpoint = 0.85;
};

/** One verified operating point of a safe-transition table. */
struct DvfsOperatingPoint
{
    /** Rate scale the point was re-derived for (1.0 = baseline). */
    double rate_scale = 1.0;

    /** The refreshed plan (scaled f_needed, new dividers/V/ZORM). */
    mapping::ChipPlan plan;

    /** Per-column divider vector, ready for arch::Chip::retune. */
    std::vector<unsigned> dividers;

    /** Chip column index of each entry in zorms (programmed cols). */
    std::vector<unsigned> zorm_columns;
    std::vector<mapping::ZormSetting> zorms;
};

/**
 * The precomputed set of divider/ZORM vectors a chip may legally
 * retune between — every point re-proved by the full static verifier
 * against the artifact's own spec/program at load time, so the
 * governor never needs to verify anything online. Points are sorted
 * by ascending rate_scale: index 0 is the slowest (cheapest)
 * verified point, baselineIndex() the artifact's own mapping.
 */
class SafeTransitionTable
{
  public:
    static constexpr size_t npos = size_t(-1);

    /**
     * Re-derive and verify one candidate per rate scale (1.0 is
     * always included). fatal() if even the baseline re-derivation
     * fails its proof — that would mean the artifact itself is
     * inconsistent.
     */
    static SafeTransitionTable build(
        const mapping::LoweredArtifact &art,
        const std::vector<double> &rate_scales,
        const SupplyLevels &levels);

    /**
     * The verifier gate one candidate must pass: @p plan with the
     * per-column ZORM settings @p zorms (aligned with
     * art.prog.columns) substituted into a copy of the artifact's
     * program, re-verified at the artifact's grid pacing. Exposed so
     * tests can plant a tampered (unsafe) candidate and watch it
     * fail.
     */
    static bool candidateVerifies(
        const mapping::LoweredArtifact &art,
        const mapping::ChipPlan &plan,
        const std::vector<mapping::ZormSetting> &zorms);

    const std::vector<DvfsOperatingPoint> &points() const
    {
        return points_;
    }

    /** Index of the artifact's own (rate_scale 1.0) point. */
    size_t baselineIndex() const { return baseline_; }

    /** Candidates whose static proof failed (never applied). */
    size_t rejected() const { return rejected_; }

    /** First point with exactly @p dividers; npos when absent. */
    size_t indexOf(const std::vector<unsigned> &dividers) const;

    bool
    contains(const std::vector<unsigned> &dividers) const
    {
        return indexOf(dividers) != npos;
    }

    /** One line per point: scale, dividers, supplies. */
    std::string describe() const;

  private:
    std::vector<DvfsOperatingPoint> points_;
    size_t baseline_ = 0;
    size_t rejected_ = 0;
};

/**
 * Apply @p point to @p chip: retune every column divider (legal only
 * at a reconfiguration point — Chip::retune enforces it) and load
 * each programmed column's ZORM setting. Both survive restart(), so
 * the point stays in force across work items until the next apply.
 */
void applyOperatingPoint(arch::Chip &chip,
                         const DvfsOperatingPoint &point);

struct DvfsGovernorConfig
{
    /** Candidate rate scales the safe table is built for. */
    std::vector<double> rate_scales = {0.25,       1.0 / 3.0, 0.5,
                                       2.0 / 3.0,  0.75,      1.0};

    /** Fraction of the arrival window an item may occupy. */
    double setpoint = 0.85;

    /** Safety factor on predicted busy ticks at unvisited points. */
    double headroom = 1.15;

    /** Grid periods per mid-item sampling slice (fleet serving). */
    unsigned sample_periods = 8;
};

/**
 * The per-chip feedback controller. All state is derived from
 * bit-exact simulation counters, so a governor fed the same item
 * sequence makes the same decisions on every scheduler backend and
 * under any fleet worker count.
 */
class DvfsGovernor
{
  public:
    /**
     * @param nominal_window_ticks reference ticks one work item's
     *        arrival window spans at the mapped (scale 1.0) rate
     */
    DvfsGovernor(const SafeTransitionTable &table,
                 double nominal_window_ticks,
                 DvfsGovernorConfig cfg = {});

    /** The operating point currently in force. */
    size_t current() const { return current_; }

    const SafeTransitionTable &table() const { return table_; }

    /**
     * Feed back one served item: the point it ran at, its drain time
     * in reference ticks, the activity *deltas* it accrued (compute,
     * branch-stall, comm-stall occupancy and ZORM-idle counters) and
     * the bus deferrals it suffered.
     */
    void observe(size_t point, uint64_t busy_ticks,
                 const ActivityReport &delta, uint64_t bus_deferrals);

    /**
     * Pick the operating point for the next item given its declared
     * arrival-rate fraction (0 = idle gap: the cheapest point wins):
     * the slowest verified point whose estimated busy time fits in
     * setpoint * the declared window. Unvisited points are estimated
     * from the calibrated per-column useful-slot counts scaled by
     * the point's ZORM fraction and divider (plus headroom); with no
     * calibration yet the baseline is chosen. Records the decision
     * and makes it current.
     */
    size_t decide(double declared_rate_scale);

    /**
     * Apply table point @p point to @p chip. False (and no chip
     * mutation) when the index is out of range or the chip is not at
     * a reconfiguration point.
     */
    bool applyPoint(arch::Chip &chip, size_t point);

    /**
     * Apply the table point with exactly @p dividers. A vector not
     * in the table — i.e. any transition without a precomputed
     * static proof — is REJECTED: returns false, touches nothing.
     */
    bool applyDividers(arch::Chip &chip,
                       const std::vector<unsigned> &dividers);

    /** Estimated busy ticks per item at @p point (see decide()). */
    uint64_t predictedBusyTicks(size_t point) const;

    /** An item overran its declared window: step the estimate up. */
    void noteDeadlineMiss();

    uint64_t deadlineMisses() const { return deadline_misses_; }

    /** Every decide() outcome, in order. */
    const std::vector<size_t> &decisions() const { return decisions_; }

    /** Every applied transition (always table indices). */
    const std::vector<size_t> &applied() const { return applied_; }

  private:
    const SafeTransitionTable &table_;
    DvfsGovernorConfig cfg_;
    double nominal_window_ticks_ = 0;
    size_t current_ = 0;

    std::vector<uint64_t> measured_busy_; //!< 0 = not yet visited
    std::vector<uint64_t> work_slots_;    //!< per column, max seen
    std::vector<uint64_t> max_deferrals_; //!< per point, max seen
    std::vector<size_t> decisions_;
    std::vector<size_t> applied_;
    uint64_t deadline_misses_ = 0;
};

/**
 * The per-phase oracle: the cheapest table point whose MEASURED busy
 * ticks (one calibration run per point) fit in setpoint * the
 * declared window — the explorer-frontier point restricted to the
 * moves a live chip can actually make (divider + ZORM retunes; actors
 * cannot be re-placed mid-run). busy_by_point entries of UINT64_MAX
 * mark unusable points. Falls back to the baseline.
 */
size_t measuredOraclePoint(const SafeTransitionTable &table,
                           const std::vector<uint64_t> &busy_by_point,
                           double declared_rate_scale,
                           double nominal_window_ticks,
                           double setpoint);

/** Operating-point policy of a governed run. */
enum class DvfsPolicy
{
    Static,   //!< paper behavior: the mapped point, always
    Governed, //!< the online feedback governor
    Oracle    //!< per-phase measured-optimal point (upper bound)
};

struct GovernedRunOptions
{
    DvfsPolicy policy = DvfsPolicy::Governed;
    SchedulerKind scheduler = defaultSchedulerKind();
    DvfsGovernorConfig governor;

    /** Check every item against the workload golden. */
    bool verify_outputs = true;

    /** Retain every item's output bytes (cross-policy equality). */
    bool keep_outputs = false;
};

/** One chip driven through one traffic scenario under one policy. */
struct GovernedRunResult
{
    std::string app;
    DvfsPolicy policy = DvfsPolicy::Static;

    uint64_t items = 0;
    uint64_t deadline_misses = 0;
    bool bit_exact = true;
    std::string first_failure;

    /** Modeled stream wall time (arrival windows + idle bursts). */
    double stream_seconds = 0;

    /** Summed per-item drain times, reference ticks. */
    uint64_t busy_ticks = 0;

    /** Host wall seconds spent inside Chip::run (sim throughput). */
    double sim_seconds = 0;

    /** Operating point each work item ran at, in order. */
    std::vector<size_t> trajectory;

    /** The inter-reconfiguration epochs the run was priced from. */
    std::vector<ActivityEpoch> epochs;

    /** Epoch-faithful power (power::priceActivityEpochs). */
    MeasuredComparison power;

    size_t table_points = 0;
    size_t table_rejected = 0;

    /** Per-item output bytes (GovernedRunOptions::keep_outputs). */
    std::vector<std::vector<uint8_t>> outputs;
};

/**
 * Drive one chip of @p app through @p scenario under the options'
 * policy: build the safe table, serve every work item (bit-exact
 * against the golden), retune at item boundaries per the policy,
 * charge idle bursts and per-item slack as active idle at the
 * CURRENT point's clocks, and price the whole stream epoch by epoch.
 */
GovernedRunResult runGoverned(const DvfsAppHooks &app,
                              const sim::TrafficScenario &scenario,
                              const GovernedRunOptions &opt = {});

/**
 * Shared state of a governed fleet: the one safe table plus one
 * governor per live stream chip. Streams are identified by their
 * contiguous item ranges — decisions depend only on the stream's own
 * history, so they are identical under any worker count.
 */
struct GovernedFleetState
{
    SafeTransitionTable table;
    DvfsGovernorConfig cfg;
    double nominal_window_ticks = 0;

    /** Declared rate per work item, cycled from the traffic spec. */
    std::vector<double> rate_by_item;

    double
    rateForItem(uint64_t item) const
    {
        if (rate_by_item.empty())
            return 1.0;
        return rate_by_item[item % rate_by_item.size()];
    }

    std::mutex mu;

    struct PerChip
    {
        std::unique_ptr<DvfsGovernor> gov;
        bool started = false;
        uint64_t expected_next = 0;
        size_t cur = 0;
        bool have_prev = false;
        ActivityReport after_feed;
        uint64_t deferrals = 0;
    };

    /** Keyed by serving chip; reset when a chip starts a new
     *  stream (item != expected_next). */
    std::map<const arch::Chip *, PerChip> chips;

    /** decide() outcome per served work item (determinism probe). */
    std::map<uint64_t, size_t> decision_by_item;

    /** on_slice grid-period samples taken across the fleet. */
    uint64_t slices = 0;
};

/** Build the shared state (table + per-item rates) for @p app. */
std::shared_ptr<GovernedFleetState> makeGovernedFleetState(
    const DvfsAppHooks &app, const sim::TrafficSpec &traffic,
    const DvfsGovernorConfig &cfg = {});

/**
 * Wrap @p app's fleet workload with the governor: feed() observes
 * the previous item, decides from the item's declared rate, and
 * applies the point at tick 0 right after the inner feed; items run
 * in grid-period slices (FleetWorkload::run_chunk) so the governor's
 * sampling points exist even mid-item. Outputs are unchanged —
 * every operating point is bit-exact by construction.
 */
sim::FleetWorkload governedFleetWorkload(
    const DvfsAppHooks &app,
    std::shared_ptr<GovernedFleetState> state);

} // namespace synchro::power

#endif // SYNC_POWER_DVFS_HH
