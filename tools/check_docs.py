#!/usr/bin/env python3
"""Docs link / file-reference checker.

Scans ``README.md`` and ``docs/*.md`` for

  * markdown links ``[text](target)`` whose target is intra-repo
    (no scheme, no pure anchor): the referenced file must exist,
    relative to the markdown file's directory (anchors are stripped
    before checking);
  * repo file references in prose or code spans — any token shaped
    like ``src/...``, ``docs/...``, ``tests/...``, ``tools/...``,
    ``bench/...`` or ``examples/...``, plus committed
    ``BENCH_*.json`` names: the path must exist relative to the repo
    root. Brace groups expand (``codegen.{hh,cc}`` checks both),
    trailing ``/`` means a directory, and tokens containing ``*``
    are treated as intentional wildcards and skipped;
  * measured numbers quoted in results tables: a markdown table row
    that cites a ``BENCH_*.json`` and contains percentage cells is
    cross-checked — the last percentage in the row must match the
    cited trajectory file's measured ``savings_pct`` (to the quoted
    precision), so re-baselining a bench without updating the docs
    fails the gate instead of leaving a stale headline number;
  * quoted speedups: a table row that cites a ``BENCH_*.json`` and
    contains ``N.Nx`` speedup cells is cross-checked — every quoted
    speedup must match one of the cited file's ``*speedup`` values
    (to the quoted precision), so the compiled-backend headline
    ratio cannot drift from ``BENCH_core.json``.

Docs rot silently when code moves; CI runs this so a renamed source
file or a dropped bench JSON fails the build instead of leaving a
stale pointer in the documentation.

Usage:
    tools/check_docs.py [--repo-root <dir>]
    tools/check_docs.py --self-test   # prove the gate still catches rot

``--self-test`` builds a scratch repo with planted rot (broken link,
stale reference, brace group, root-absolute link, stale table
number) and fails unless the checker flags every one of them and
passes the clean version — CI runs it before the real check so a
regressed regex cannot make the docs gate pass vacuously.
"""

import argparse
import itertools
import json
import pathlib
import re
import sys

LINK_RE = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
PCT_RE = re.compile(r"(-?\d+(?:\.\d+)?)%")
SPEEDUP_RE = re.compile(r"(\d+(?:\.\d+)?)[x\u00d7](?![\w(])")
PATH_RE = re.compile(
    r"(?<![\w/-])((?:src|docs|tests|tools|bench|examples)/"
    r"[A-Za-z0-9_.{},/-]+|BENCH_[A-Za-z0-9_*]+\.json)")


def expand_braces(token):
    """codegen.{hh,cc} -> [codegen.hh, codegen.cc] (one group)."""
    m = re.search(r"\{([^}]*)\}", token)
    if not m:
        return [token]
    head, tail = token[: m.start()], token[m.end():]
    return list(
        itertools.chain.from_iterable(
            expand_braces(head + alt + tail)
            for alt in m.group(1).split(",")))


def measured_savings_pct(json_path):
    """The headline measured percentage of a trajectory file, or
    None: a ``*power_measured`` section's ``savings_pct``, else the
    explorer summary's ``max_baseline_gap_pct``."""
    try:
        data = json.loads(json_path.read_text(encoding="utf-8"))
    except (OSError, ValueError):
        return None
    for section, kv in sorted(data.items()):
        if section.endswith("power_measured") and "savings_pct" in kv:
            return float(kv["savings_pct"])
    for section, kv in sorted(data.items()):
        if "max_baseline_gap_pct" in kv:
            return float(kv["max_baseline_gap_pct"])
    return None


def trajectory_speedups(json_path):
    """Every ``*speedup`` value in a trajectory file, by section
    and key, or an empty dict when unreadable."""
    try:
        data = json.loads(json_path.read_text(encoding="utf-8"))
    except (OSError, ValueError):
        return {}
    out = {}
    for section, kv in sorted(data.items()):
        for key, v in sorted(kv.items()):
            if key.endswith("speedup"):
                out[f"{section}.{key}"] = float(v)
    return out


def check_table_row(md_path, repo_root, lineno, line, failures):
    """Cross-check a results-table row's measured %% and quoted
    speedups against the trajectory file it cites."""
    if "|" not in line:
        return
    cited = re.findall(r"\bBENCH_\w+\.json\b", line)
    if len(cited) != 1:
        return
    pcts = PCT_RE.findall(line)
    if pcts:
        actual = measured_savings_pct(repo_root / cited[0])
        if actual is not None:
            quoted = pcts[-1]  # last % cell = the measured column
            # Match to the precision the doc quotes (a row saying
            # 13.0% is fine while the json holds 13.0474).
            decimals = (len(quoted.split(".")[1])
                        if "." in quoted else 0)
            if abs(float(quoted) - actual) > \
                    0.5 * 10.0**-decimals + 1e-9:
                failures.append(
                    f"{md_path.relative_to(repo_root)}:{lineno}: "
                    f"quoted measured savings {quoted}% does not "
                    f"match {cited[0]} (savings_pct = {actual:.4g})")
    speedups = trajectory_speedups(repo_root / cited[0])
    for quoted in SPEEDUP_RE.findall(line):
        if not speedups:
            break
        decimals = len(quoted.split(".")[1]) if "." in quoted else 0
        tol = 0.5 * 10.0**-decimals + 1e-9
        if not any(abs(float(quoted) - v) <= tol
                   for v in speedups.values()):
            have = ", ".join(f"{k}={v:.4g}"
                             for k, v in speedups.items())
            failures.append(
                f"{md_path.relative_to(repo_root)}:{lineno}: quoted "
                f"speedup {quoted}x matches no *speedup value in "
                f"{cited[0]} ({have})")


def check_file(md_path, repo_root, failures):
    text = md_path.read_text(encoding="utf-8")
    for lineno, line in enumerate(text.splitlines(), 1):
        check_table_row(md_path, repo_root, lineno, line, failures)
        for m in LINK_RE.finditer(line):
            target = m.group(1)
            if re.match(r"^[a-z][a-z0-9+.-]*:", target):
                continue  # http:, https:, mailto:, ...
            target = target.split("#", 1)[0]
            if not target:
                continue  # pure anchor
            if target.startswith("/"):
                # GitHub resolves root-absolute links against the
                # repository, not the filesystem.
                resolved = (repo_root / target.lstrip("/")).resolve()
            else:
                resolved = (md_path.parent / target).resolve()
            if not resolved.exists():
                failures.append(
                    f"{md_path.relative_to(repo_root)}:{lineno}: "
                    f"broken link '{m.group(1)}'")
        for m in PATH_RE.finditer(line):
            token = m.group(1).rstrip(".,;:")
            if "*" in token:
                continue  # intentional wildcard (BENCH_*.json)
            for path in expand_braces(token):
                resolved = repo_root / path
                ok = (resolved.is_dir()
                      if path.endswith("/") else resolved.exists())
                if not ok:
                    failures.append(
                        f"{md_path.relative_to(repo_root)}:{lineno}:"
                        f" stale file reference '{path}'")


def run_checks(root):
    """All failures across the root's README.md + docs/*.md, or
    None when there is nothing to check."""
    docs = sorted((root / "docs").glob("*.md"))
    readme = root / "README.md"
    if readme.exists():
        docs.insert(0, readme)
    if not docs:
        return None
    failures = []
    for md in docs:
        check_file(md, root, failures)
    return failures


def self_test():
    """Plant every category of rot and prove the checker bites."""
    import json as json_mod
    import shutil
    import tempfile

    root = pathlib.Path(tempfile.mkdtemp(prefix="check_docs_test"))
    try:
        (root / "docs").mkdir()
        (root / "docs" / "GOOD.md").write_text("fine\n")
        (root / "src").mkdir()
        (root / "src" / "real.hh").write_text("")
        (root / "src" / "real.cc").write_text("")
        (root / "BENCH_x.json").write_text(json_mod.dumps(
            {"x_power_measured": {"savings_pct": 37.3005}}))
        (root / "BENCH_y.json").write_text(json_mod.dumps(
            {"explore_summary": {"max_baseline_gap_pct": 0.0}}))
        (root / "BENCH_z.json").write_text(json_mod.dumps(
            {"core": {"compiled_speedup": 11.0421,
                      "fastpath_speedup": 2.66}}))

        clean = ("[good](docs/GOOD.md) [abs](/docs/GOOD.md) "
                 "`src/real.{hh,cc}` see BENCH_*.json\n"
                 "| app | 32% | 37.3% | `BENCH_x.json` |\n"
                 "| explorer | gap 0.0% | `BENCH_y.json` |\n"
                 "| compiled | 11.0x | `BENCH_z.json` |\n")
        rotten = ("[gone](docs/NOPE.md) [abs](/docs/NOPE.md) "
                  "`src/gone.{hh,cc}`\n"
                  "| app | 32% | 12.0% | `BENCH_x.json` |\n"
                  "| explorer | gap 7.0% | `BENCH_y.json` |\n"
                  "| compiled | 15.0x | `BENCH_z.json` |\n")

        (root / "README.md").write_text(clean)
        failures = run_checks(root)
        if failures:
            print("check_docs --self-test: clean tree flagged:\n  " +
                  "\n  ".join(failures), file=sys.stderr)
            return 1

        (root / "README.md").write_text(rotten)
        failures = run_checks(root)
        wanted = ["docs/NOPE.md", "/docs/NOPE.md", "src/gone.hh",
                  "src/gone.cc", "12.0%", "7.0%", "15.0x"]
        text = "\n".join(failures)
        missed = [w for w in wanted if w not in text]
        if missed:
            print(f"check_docs --self-test: planted rot NOT caught: "
                  f"{missed}\ngot:\n  " + "\n  ".join(failures),
                  file=sys.stderr)
            return 1
        print("check_docs --self-test: all planted rot caught, "
              "clean tree passes")
        return 0
    finally:
        shutil.rmtree(root, ignore_errors=True)


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument(
        "--repo-root", type=pathlib.Path,
        default=pathlib.Path(__file__).resolve().parent.parent)
    ap.add_argument("--self-test", action="store_true",
                    help="verify the checker itself catches "
                         "planted rot")
    args = ap.parse_args()
    if args.self_test:
        return self_test()
    root = args.repo_root.resolve()

    failures = run_checks(root)
    if failures is None:
        print("check_docs: no README.md or docs/*.md found",
              file=sys.stderr)
        return 2
    if failures:
        print("check_docs: STALE DOCUMENTATION:")
        for f in failures:
            print(f"  FAIL {f}")
        return 1
    print("check_docs: OK (links, repo file references and quoted "
          "bench numbers all resolve)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
