#!/usr/bin/env python3
"""Bench perf-regression gate.

Compares freshly emitted BENCH_*.json trajectory files against the
committed baselines and fails CI when the perf trajectory regresses:

  * any machine-independent throughput metric (``*_kbps``,
    ``*_msps``, ``*_kblocks_s``, ``*_kmb_s`` — sustained simulated
    rates, functions of tick counts only) drops more than
    ``--tolerance`` (default 25%) below its baseline,
  * any wall-clock throughput metric (``*_ticks_per_sec``,
    ``*_mticks_per_s``, ``*_speedup``) drops more than
    ``--wall-tolerance`` (default 60%) — looser because the
    committed baselines and the CI runner are different machines;
    the floor still catches order-of-magnitude slowdowns,
  * a ``bit_exact`` flag regresses (1 in the baseline, 0 now),
  * a measured ``savings_pct`` drops more than 5 percentage points
    (``paper_*`` reference values are informational and ignored).

Baselines missing a section/key that the fresh file has are fine
(new benches extend the trajectory); fresh files missing a baseline
key are a failure (the trajectory must never silently lose a metric).

Usage:
    tools/bench_check.py --baseline-dir <dir-with-committed-json> \
                         --fresh-dir <dir-with-new-json>
"""

import argparse
import json
import pathlib
import sys

SIMULATED_SUFFIXES = ("_kbps", "_msps", "_kblocks_s", "_kmb_s")
WALL_CLOCK_SUFFIXES = ("_ticks_per_sec", "_mticks_per_s", "_speedup")
SAVINGS_DROP_PP = 5.0


def classify(key):
    if key == "bit_exact":
        return "bit_exact"
    if key.endswith("savings_pct") and not key.startswith("paper"):
        return "savings"
    if key.endswith(SIMULATED_SUFFIXES):
        return "throughput"
    if key.endswith(WALL_CLOCK_SUFFIXES):
        return "wall_throughput"
    return None


def check_file(name, baseline, fresh, tolerance, wall_tolerance,
               failures):
    for section, base_kv in baseline.items():
        fresh_kv = fresh.get(section)
        if fresh_kv is None:
            failures.append(f"{name}: section '{section}' vanished")
            continue
        for key, base_v in base_kv.items():
            kind = classify(key)
            if kind is None:
                continue
            if key not in fresh_kv:
                failures.append(
                    f"{name}: {section}.{key} vanished "
                    f"(baseline {base_v})")
                continue
            new_v = fresh_kv[key]
            if kind == "bit_exact":
                if new_v < base_v:
                    failures.append(
                        f"{name}: {section}.{key} regressed "
                        f"{base_v} -> {new_v}")
            elif kind == "savings":
                if new_v < base_v - SAVINGS_DROP_PP:
                    failures.append(
                        f"{name}: {section}.{key} dropped "
                        f"{base_v:.2f} -> {new_v:.2f} "
                        f"(> {SAVINGS_DROP_PP} pp)")
            else:
                tol = (tolerance if kind == "throughput"
                       else wall_tolerance)
                floor = base_v * (1.0 - tol)
                if new_v < floor:
                    pct = (1.0 - new_v / base_v) * 100 if base_v else 0
                    failures.append(
                        f"{name}: {section}.{key} dropped "
                        f"{base_v:.4g} -> {new_v:.4g} "
                        f"(-{pct:.1f}%, floor {floor:.4g})")


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--baseline-dir", required=True,
                    type=pathlib.Path)
    ap.add_argument("--fresh-dir", required=True, type=pathlib.Path)
    ap.add_argument("--tolerance", type=float, default=0.25,
                    help="allowed fractional drop for simulated "
                         "throughput metrics (default 0.25)")
    ap.add_argument("--wall-tolerance", type=float, default=0.60,
                    help="allowed fractional drop for wall-clock "
                         "metrics, looser for cross-machine "
                         "baselines (default 0.60)")
    args = ap.parse_args()

    baselines = sorted(args.baseline_dir.glob("BENCH_*.json"))
    if not baselines:
        print(f"bench_check: no BENCH_*.json baselines in "
              f"{args.baseline_dir}", file=sys.stderr)
        return 2

    failures = []
    checked = 0
    for base_path in baselines:
        fresh_path = args.fresh_dir / base_path.name
        if not fresh_path.exists():
            failures.append(f"{base_path.name}: not re-emitted by "
                            f"the bench run")
            continue
        with open(base_path) as f:
            baseline = json.load(f)
        with open(fresh_path) as f:
            fresh = json.load(f)
        check_file(base_path.name, baseline, fresh, args.tolerance,
                   args.wall_tolerance, failures)
        checked += 1

    if failures:
        print("bench_check: PERF TRAJECTORY REGRESSED:")
        for f in failures:
            print(f"  FAIL {f}")
        return 1
    print(f"bench_check: {checked} trajectory file(s) OK "
          f"(simulated tolerance {args.tolerance:.0%}, wall-clock "
          f"{args.wall_tolerance:.0%}, savings drop "
          f"< {SAVINGS_DROP_PP} pp, bit_exact stable)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
