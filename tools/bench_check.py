#!/usr/bin/env python3
"""Bench perf-regression gate.

Compares freshly emitted BENCH_*.json trajectory files against the
committed baselines and fails CI when the perf trajectory regresses:

  * any machine-independent throughput metric (``*_kbps``,
    ``*_msps``, ``*_kblocks_s``, ``*_kmb_s`` — sustained simulated
    rates, functions of tick counts only) drops more than
    ``--tolerance`` (default 25%) below its baseline,
  * a ``*compiled_speedup`` ratio (compiled backend vs event-queue
    wall time, measured on one machine so the machine cancels out)
    drops more than ``--tolerance`` (default 25%) below its
    baseline,
  * a ``*warm_start_speedup`` ratio (Chip::clone warm start vs
    cold codegen + program load, both timed in the same process so
    the machine cancels out) drops more than ``--tolerance``,
  * any other wall-clock throughput metric (``*_ticks_per_sec``,
    ``*_mticks_per_s``, ``*_speedup`` — including the
    parallel-columns ``*parallel_speedup`` ratio, whose team
    benefit depends on the host's spare cores — the fleet's
    ``chips_s`` / ``ticks_s`` serving rates) drops more than
    ``--wall-tolerance`` (default 60%) — looser because the
    committed baselines and the CI runner are different machines;
    the floor still catches order-of-magnitude slowdowns,
  * a ``bit_exact`` or ``agreement`` flag regresses (1 in the
    baseline, 0 now),
  * a measured ``savings_pct`` drops more than 5 percentage points
    (``paper_*`` reference values are informational and ignored) —
    this includes the DVFS governor's per-app
    ``governed_savings_pct`` and its worst-app headline in
    ``BENCH_dvfs.json``,
  * an ``*_gap_pct`` divergence (lower is better — e.g. the
    explorer's optimizer-vs-measured-frontier gap, or the DVFS
    governor's ``oracle_gap_pct`` against the per-phase oracle)
    rises more than 5 percentage points.

The governed simulation rate ``governed_sim_ticks_per_sec`` rides
the ``*_ticks_per_sec`` wall-clock class above.

Baselines missing a section/key that the fresh file has are fine
(new benches extend the trajectory); fresh files missing a baseline
key are a failure (the trajectory must never silently lose a
metric), and a committed ``BENCH_*.json`` with no fresh counterpart
at all is a failure (every trajectory file must be re-emitted by
the bench run — a bench dropped from CI cannot silently exempt its
baseline from the gate).

Usage:
    tools/bench_check.py --baseline-dir <dir-with-committed-json> \
                         --fresh-dir <dir-with-new-json>
    tools/bench_check.py --self-test  # prove the gate still bites
"""

import argparse
import json
import pathlib
import sys

SIMULATED_SUFFIXES = ("_kbps", "_msps", "_kblocks_s", "_kmb_s")
WALL_CLOCK_SUFFIXES = ("_ticks_per_sec", "_mticks_per_s", "_speedup",
                       "chips_s", "ticks_s")
SAVINGS_DROP_PP = 5.0
GAP_RISE_PP = 5.0


def classify(key):
    if key in ("bit_exact", "agreement"):
        return "bit_exact"
    if key.endswith("savings_pct") and not key.startswith("paper"):
        return "savings"
    if key.endswith("gap_pct"):
        return "gap"
    if key.endswith(SIMULATED_SUFFIXES):
        return "throughput"
    # Same-machine backend-vs-backend ratio: the machine cancels
    # out, so it gets the tight simulated tolerance, not the loose
    # cross-machine wall-clock one.
    if key.endswith("compiled_speedup"):
        return "throughput"
    # Likewise the warm-start ratio: clone and cold build are timed
    # back to back in one process, so the machine cancels out.
    if key.endswith("warm_start_speedup"):
        return "throughput"
    # The parallel-columns ratio does NOT cancel the machine: the
    # column team's benefit depends on spare host cores, and the
    # committed baseline and the CI runner differ exactly there —
    # so it gets the loose wall-clock tolerance.
    if key.endswith("parallel_speedup"):
        return "wall_throughput"
    if key.endswith(WALL_CLOCK_SUFFIXES):
        return "wall_throughput"
    return None


def check_file(name, baseline, fresh, tolerance, wall_tolerance,
               failures):
    for section, base_kv in baseline.items():
        fresh_kv = fresh.get(section)
        if fresh_kv is None:
            failures.append(f"{name}: section '{section}' vanished")
            continue
        for key, base_v in base_kv.items():
            kind = classify(key)
            if kind is None:
                continue
            if key not in fresh_kv:
                failures.append(
                    f"{name}: {section}.{key} vanished "
                    f"(baseline {base_v})")
                continue
            new_v = fresh_kv[key]
            if kind == "bit_exact":
                if new_v < base_v:
                    failures.append(
                        f"{name}: {section}.{key} regressed "
                        f"{base_v} -> {new_v}")
            elif kind == "savings":
                if new_v < base_v - SAVINGS_DROP_PP:
                    failures.append(
                        f"{name}: {section}.{key} dropped "
                        f"{base_v:.2f} -> {new_v:.2f} "
                        f"(> {SAVINGS_DROP_PP} pp)")
            elif kind == "gap":
                if new_v > base_v + GAP_RISE_PP:
                    failures.append(
                        f"{name}: {section}.{key} rose "
                        f"{base_v:.2f} -> {new_v:.2f} "
                        f"(> {GAP_RISE_PP} pp)")
            else:
                tol = (tolerance if kind == "throughput"
                       else wall_tolerance)
                floor = base_v * (1.0 - tol)
                if new_v < floor:
                    pct = (1.0 - new_v / base_v) * 100 if base_v else 0
                    failures.append(
                        f"{name}: {section}.{key} dropped "
                        f"{base_v:.4g} -> {new_v:.4g} "
                        f"(-{pct:.1f}%, floor {floor:.4g})")


def compare_dirs(baseline_dir, fresh_dir, tolerance, wall_tolerance):
    """(failures, files_checked) across every committed baseline.
    None when the baseline dir holds no trajectory files at all."""
    baselines = sorted(baseline_dir.glob("BENCH_*.json"))
    if not baselines:
        return None, 0

    failures = []
    checked = 0
    for base_path in baselines:
        fresh_path = fresh_dir / base_path.name
        if not fresh_path.exists():
            failures.append(f"{base_path.name}: committed baseline "
                            f"has no fresh counterpart (not "
                            f"re-emitted by the bench run)")
            continue
        with open(base_path) as f:
            baseline = json.load(f)
        with open(fresh_path) as f:
            fresh = json.load(f)
        check_file(base_path.name, baseline, fresh, tolerance,
                   wall_tolerance, failures)
        checked += 1
    return failures, checked


def self_test():
    """Plant every category of regression and prove the gate
    bites, then prove a clean trajectory passes."""
    import shutil
    import tempfile

    root = pathlib.Path(tempfile.mkdtemp(prefix="bench_check_test"))
    try:
        base = root / "base"
        fresh = root / "fresh"
        base.mkdir()
        fresh.mkdir()
        good = {
            "sec": {
                "x_kbps": 100.0,
                "compiled_speedup": 12.0,
                "ddc_warm_start_speedup": 6.0,
                "parallel_speedup": 1.8,
                "fast_mticks_per_s": 10.0,
                "chips_s": 200.0,
                "ticks_s": 1.4e7,
                "bit_exact": 1,
                "agreement": 1,
                "savings_pct": 30.0,
                "baseline_gap_pct": 1.0,
                "governed_savings_pct": 23.0,
                "oracle_gap_pct": 28.0,
                "governed_sim_ticks_per_sec": 1.8e7,
            }
        }
        bad = {
            "sec": {
                "x_kbps": 60.0,          # -40% simulated throughput
                "compiled_speedup": 8.0,  # -33% backend ratio
                "ddc_warm_start_speedup": 4.0,  # -33% warm-start
                "parallel_speedup": 0.3,  # -83% column-team ratio
                "fast_mticks_per_s": 2.0,  # -80% wall throughput
                "chips_s": 40.0,         # -80% fleet serving rate
                "ticks_s": 2.8e6,        # -80% fleet tick rate
                "bit_exact": 0,          # flag regressed
                "agreement": 0,          # flag regressed
                "savings_pct": 20.0,     # -10 pp savings
                "baseline_gap_pct": 9.0,  # +8 pp gap
                "governed_savings_pct": 15.0,  # -8 pp DVFS savings
                "oracle_gap_pct": 35.0,  # +7 pp DVFS oracle gap
                "governed_sim_ticks_per_sec": 3.0e6,  # -83% wall
            }
        }
        (base / "BENCH_x.json").write_text(json.dumps(good))
        (base / "BENCH_gone.json").write_text(json.dumps(good))
        (fresh / "BENCH_x.json").write_text(json.dumps(bad))
        # BENCH_gone.json deliberately not re-emitted.

        failures, _ = compare_dirs(base, fresh, 0.25, 0.60)
        wanted = ["x_kbps", "compiled_speedup",
                  "ddc_warm_start_speedup", "parallel_speedup",
                  "fast_mticks_per_s", "chips_s", "ticks_s",
                  "bit_exact",
                  "agreement", "savings_pct", "baseline_gap_pct",
                  "governed_savings_pct", "oracle_gap_pct",
                  "governed_sim_ticks_per_sec",
                  "no fresh counterpart"]
        text = "\n".join(failures)
        missed = [w for w in wanted if w not in text]
        if missed:
            print(f"bench_check --self-test: planted regressions "
                  f"NOT caught: {missed}\ngot:\n  " +
                  "\n  ".join(failures), file=sys.stderr)
            return 1

        (fresh / "BENCH_x.json").write_text(json.dumps(good))
        (fresh / "BENCH_gone.json").write_text(json.dumps(good))
        failures, checked = compare_dirs(base, fresh, 0.25, 0.60)
        if failures or checked != 2:
            print("bench_check --self-test: clean trajectory "
                  "flagged:\n  " + "\n  ".join(failures),
                  file=sys.stderr)
            return 1
        print("bench_check --self-test: all planted regressions "
              "caught, clean trajectory passes")
        return 0
    finally:
        shutil.rmtree(root, ignore_errors=True)


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--baseline-dir", type=pathlib.Path)
    ap.add_argument("--fresh-dir", type=pathlib.Path)
    ap.add_argument("--tolerance", type=float, default=0.25,
                    help="allowed fractional drop for simulated "
                         "throughput metrics (default 0.25)")
    ap.add_argument("--wall-tolerance", type=float, default=0.60,
                    help="allowed fractional drop for wall-clock "
                         "metrics, looser for cross-machine "
                         "baselines (default 0.60)")
    ap.add_argument("--self-test", action="store_true",
                    help="verify the gate itself catches planted "
                         "regressions")
    args = ap.parse_args()
    if args.self_test:
        return self_test()
    if not args.baseline_dir or not args.fresh_dir:
        ap.error("--baseline-dir and --fresh-dir are required "
                 "(unless --self-test)")

    failures, checked = compare_dirs(
        args.baseline_dir, args.fresh_dir, args.tolerance,
        args.wall_tolerance)
    if failures is None:
        print(f"bench_check: no BENCH_*.json baselines in "
              f"{args.baseline_dir}", file=sys.stderr)
        return 2

    if failures:
        print("bench_check: PERF TRAJECTORY REGRESSED:")
        for f in failures:
            print(f"  FAIL {f}")
        return 1
    print(f"bench_check: {checked} trajectory file(s) OK "
          f"(simulated tolerance {args.tolerance:.0%}, wall-clock "
          f"{args.wall_tolerance:.0%}, savings drop "
          f"< {SAVINGS_DROP_PP} pp, bit_exact stable)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
